// Package interference composes the experiment waveforms: a victim 802.11
// transmission plus one or more independently-timed interfering OFDM
// transmitters on a shared sampled band, at calibrated SIR and SNR.
//
// The composite band reproduces the paper's controlled USRP setup (§3.2):
// "contiguous subcarriers are assigned to the sender and interferer with
// [a] guardband in between. The interferer transmits the signal with a
// temporal offset that is greater than … the duration of the cyclic prefix"
// — the misalignment makes the interferer's energy smear across the
// victim's subcarriers differently in every FFT segment, which is exactly
// the structure CPRecycle exploits. Co-channel interference uses a zero
// subcarrier offset on the same band.
//
// Subcarrier spacing is 312.5 kHz on every grid (the composite band is an
// oversampled view), so subcarrier offsets translate directly to MHz.
package interference

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/ofdm"
	"repro/internal/wifi"
)

// SubcarrierSpacingMHz is the 802.11a/g subcarrier spacing.
const SubcarrierSpacingMHz = 0.3125

// Interferer describes one interfering transmitter.
type Interferer struct {
	// CenterOffset is the interferer's DC subcarrier offset from the
	// victim's DC, in subcarriers (= composite bins). 0 means co-channel.
	CenterOffset int
	// SIRdB is the victim-signal-to-this-interferer power ratio.
	SIRdB float64
	// BoundaryOffset places the interferer's symbol boundaries at this
	// many samples past each victim symbol's start (victim and interferer
	// share the 4 µs symbol period, so the relative offset is constant
	// across a frame). The paper requires a temporal offset "greater than
	// … the duration of the cyclic prefix", i.e. a boundary inside the
	// victim's standard FFT window — otherwise the interferer stays
	// orthogonal and harmless. Zero draws the offset uniformly from
	// (CP, symbol length) afresh for every Run, like the free-running
	// transmitters of the testbed.
	BoundaryOffset int
	// MCS is the interferer's own modulation; zero value selects 16-QAM 1/2.
	MCS wifi.MCS
	// Channel is the interferer→receiver channel; nil means ideal.
	Channel *channel.Multipath
	// CFO is the interferer's carrier frequency offset relative to the
	// receiver, in subcarrier spacings (0.1 ≈ 31 kHz ≈ 13 ppm at 2.4 GHz).
	// Real transmitters are never frequency-locked to the victim's
	// receiver — the paper (§1, [46]) notes orthogonality only holds "in
	// perfectly synchronized systems, which rarely occurs" — and this
	// offset is what makes the interference leakage rotate differently in
	// every FFT segment. Zero draws ±[0.05, 0.2) afresh per Run.
	CFO float64
}

// Scenario describes one experiment configuration.
type Scenario struct {
	// Q is the composite band oversampling factor (1 = native 20 MHz band;
	// 4 = 80 MHz composite for adjacent-channel layouts).
	Q int
	// VictimCenter is the victim's DC bin on the composite grid.
	VictimCenter int
	// SNRdB is the AWGN level relative to the victim's received power.
	// Values ≥ 1000 disable noise.
	SNRdB float64
	// Channel is the victim→receiver channel; nil means ideal.
	Channel *channel.Multipath
	// Interferers lists the interfering transmitters (may be empty).
	Interferers []Interferer
	// Pad is the number of idle samples before the victim frame; zero
	// selects 100·Q.
	Pad int
	// Pool, when set, draws each interferer tile from the shared
	// pre-encoded waveform pool (one r.Intn draw per tile) instead of
	// encoding a fresh PPDU per tile. Deterministic per packet seed, but
	// a different draw sequence than the pool-less path — see
	// wifi.WaveformPool.
	Pool *wifi.WaveformPool
}

// Composite is one realised scenario: the received stream and ground truth.
type Composite struct {
	// Samples is the received waveform: victim + interference + noise.
	Samples []complex128
	// InterferenceOnly is the summed interference with the sender muted
	// and no noise — the Oracle's perfect knowledge.
	InterferenceOnly []complex128
	// Victim is the transmitted victim PPDU.
	Victim *wifi.PPDU
	// Grid is the victim's grid on the composite band.
	Grid ofdm.Grid
	// FrameStart is the sample index of the victim preamble.
	FrameStart int
	// PSDU is the transmitted victim PSDU.
	PSDU []byte
}

// VictimGrid returns the victim's grid for the scenario.
func (s *Scenario) VictimGrid() ofdm.Grid {
	q := s.Q
	if q < 1 {
		q = 1
	}
	return ofdm.WideGrid(64, 16, q, s.VictimCenter)
}

// InterfererGrid returns interferer i's grid.
func (s *Scenario) InterfererGrid(i int) ofdm.Grid {
	q := s.Q
	if q < 1 {
		q = 1
	}
	return ofdm.WideGrid(64, 16, q, s.VictimCenter+s.Interferers[i].CenterOffset)
}

// Run realises the scenario for one victim PSDU, drawing interferer
// payloads, victim data and noise from r.
func (s *Scenario) Run(r *dsp.Rand, psdu []byte, mcs wifi.MCS) (*Composite, error) {
	q := s.Q
	if q < 1 {
		q = 1
	}
	g := s.VictimGrid()
	pad := s.Pad
	if pad == 0 {
		pad = 100 * q
	}

	vcfg := wifi.TxConfig{Grid: g, MCS: mcs, ScramblerSeed: uint8(1 + r.Intn(127))}
	victim, err := wifi.BuildPPDU(vcfg, psdu)
	if err != nil {
		return nil, fmt.Errorf("interference: victim: %w", err)
	}
	vWave := victim.Samples
	if s.Channel != nil {
		vWave = s.Channel.Apply(vWave)
	}
	streamLen := pad + len(vWave) + pad
	stream := make([]complex128, streamLen)
	dsp.AddInto(stream, vWave, pad)
	victimPower := dsp.Power(vWave)

	interfOnly := make([]complex128, streamLen)
	victimDataStart := pad + victim.DataStart
	for i := range s.Interferers {
		wave, err := s.interfererWave(r, i, streamLen, victimDataStart)
		if err != nil {
			return nil, err
		}
		gain := channel.GainForSIR(victimPower, dsp.Power(wave), s.Interferers[i].SIRdB)
		dsp.Scale(wave, gain)
		dsp.AddInto(interfOnly, wave, 0)
	}
	for i := range interfOnly {
		stream[i] += interfOnly[i]
	}
	if s.SNRdB < 1000 {
		channel.AWGN(r, stream, channel.NoisePowerForSNR(victimPower, s.SNRdB))
	}

	return &Composite{
		Samples:          stream,
		InterferenceOnly: interfOnly,
		Victim:           victim,
		Grid:             g,
		FrameStart:       pad,
		PSDU:             psdu,
	}, nil
}

// interfererWave builds a continuous stream of back-to-back PPDUs from
// interferer i covering [0, streamLen), tiled so that the interferer's
// symbol boundaries fall BoundaryOffset samples past each victim data
// symbol start. PPDU lengths are whole multiples of the symbol length, so
// the relative boundary position persists across tiles.
func (s *Scenario) interfererWave(r *dsp.Rand, i int, streamLen, victimDataStart int) ([]complex128, error) {
	itf := s.Interferers[i]
	g := s.InterfererGrid(i)
	mcs := itf.MCS
	if mcs.Name == "" {
		m, err := wifi.MCSByName("16-QAM 1/2")
		if err != nil {
			return nil, err
		}
		mcs = m
	}
	symLen := g.SymLen()
	boundary := itf.BoundaryOffset
	if boundary == 0 {
		// Free-running transmitter: any offset beyond the CP, fresh per Run.
		boundary = g.CP + 1 + r.Intn(symLen-g.CP-1)
	}

	out := make([]complex128, streamLen)
	if s.Pool != nil {
		// Pooled tiles: one index draw per tile, shared pre-encoded (and
		// pre-filtered) waveforms. PPDU length is known without encoding.
		ppduLen := wifi.PPDULen(g, mcs, s.Pool.PSDUBytes())
		pos := (victimDataStart+boundary)%symLen - ppduLen
		for ; pos < streamLen; pos += ppduLen {
			w, err := s.Pool.PickFiltered(r, g, mcs, itf.Channel)
			if err != nil {
				return nil, fmt.Errorf("interference: interferer %d: %w", i, err)
			}
			dsp.AddInto(out, w, pos)
		}
	} else if err := s.freshTiles(r, itf, g, mcs, out, victimDataStart, boundary); err != nil {
		return nil, fmt.Errorf("interference: interferer %d: %w", i, err)
	}
	cfo := itf.CFO
	if cfo == 0 {
		mag := 0.05 + 0.15*r.Float64()
		if r.Intn(2) == 0 {
			mag = -mag
		}
		cfo = mag
	}
	dsp.FreqShift(out, cfo, g.NFFT, 0)
	return out, nil
}

// freshTiles fills out with per-tile freshly-encoded PPDUs — the pool-less
// path. The RNG draw sequence (scrambler seed, then one 396-byte payload
// per tile plus one trailing payload) reproduces the original
// build-then-advance loop bit for bit, but the trailing payload — which
// that loop encoded and then discarded — is only drawn, never encoded,
// saving one full PPDU build per interferer per packet.
func (s *Scenario) freshTiles(r *dsp.Rand, itf Interferer, g ofdm.Grid, mcs wifi.MCS, out []complex128, victimDataStart, boundary int) error {
	symLen := g.SymLen()
	cfg := wifi.TxConfig{Grid: g, MCS: mcs, ScramblerSeed: uint8(1 + r.Intn(127))}
	payload := wifi.BuildPSDU(r.Bytes(396))
	ppduLen := wifi.PPDULen(g, mcs, len(payload))
	// Choose the first tile position ≡ victimDataStart+boundary (mod symLen)
	// and at or before sample 0.
	pos := (victimDataStart+boundary)%symLen - ppduLen
	for ; pos < len(out); pos += ppduLen {
		ppdu, err := wifi.BuildPPDU(cfg, payload)
		if err != nil {
			return err
		}
		w := ppdu.Samples
		if itf.Channel != nil {
			w = itf.Channel.Apply(w)
		}
		dsp.AddInto(out, w, pos)
		// Fresh payload for the next tile.
		payload = wifi.BuildPSDU(r.Bytes(396))
	}
	return nil
}

// OffsetForGuardMHz returns the interferer center offset (in subcarriers)
// that leaves the given edge-to-edge guard band, in MHz, between the
// victim's highest used subcarrier (+26) and the interferer's lowest
// (−26). A guard of 0 MHz packs the bands back to back.
func OffsetForGuardMHz(guardMHz float64) int {
	guardSC := int(guardMHz/SubcarrierSpacingMHz + 0.5)
	return 53 + guardSC
}

// GuardMHzForOffset is the inverse of OffsetForGuardMHz.
func GuardMHzForOffset(offset int) float64 {
	return float64(offset-53) * SubcarrierSpacingMHz
}

// Channel80211Offset returns the subcarrier offset corresponding to n
// 802.11 channel numbers of separation (5 MHz each): the paper's ch 8 vs
// ch 11 scenario is Channel80211Offset(3) = 48 subcarriers = 15 MHz.
func Channel80211Offset(channels int) int {
	return channels * 16 // 5 MHz / 312.5 kHz
}
