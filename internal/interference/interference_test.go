package interference

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/ofdm"
	"repro/internal/rx"
	"repro/internal/wifi"
)

func qpsk(t testing.TB) wifi.MCS {
	t.Helper()
	m, err := wifi.MCSByName("QPSK 1/2")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGuardBandConversions(t *testing.T) {
	if OffsetForGuardMHz(0) != 53 {
		t.Fatalf("0 MHz guard offset = %d", OffsetForGuardMHz(0))
	}
	// 4 subcarriers of guard (paper §3.2) is 1.25 MHz.
	if OffsetForGuardMHz(1.25) != 57 {
		t.Fatalf("1.25 MHz guard offset = %d", OffsetForGuardMHz(1.25))
	}
	for _, off := range []int{53, 57, 101, 149} {
		if got := OffsetForGuardMHz(GuardMHzForOffset(off)); got != off {
			t.Fatalf("round trip offset %d → %d", off, got)
		}
	}
	// Paper's ch8 vs ch11: 3 channels = 15 MHz = 48 subcarriers.
	if Channel80211Offset(3) != 48 {
		t.Fatalf("3-channel offset = %d", Channel80211Offset(3))
	}
}

func TestScenarioNoInterference(t *testing.T) {
	s := &Scenario{Q: 1, SNRdB: 10000}
	r := dsp.NewRand(1)
	psdu := wifi.BuildPSDU(r.Bytes(46))
	c, err := s.Run(r, psdu, qpsk(t))
	if err != nil {
		t.Fatal(err)
	}
	if dsp.Power(c.InterferenceOnly) != 0 {
		t.Fatal("no interferers configured but interference present")
	}
	// The victim decodes perfectly.
	f, err := rx.NewFrame(c.Grid, c.Samples, c.FrameStart)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rx.DecodeData(f, qpsk(t), len(psdu), rx.StandardDecider{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FCSOK {
		t.Fatal("clean scenario should decode")
	}
}

func TestScenarioSIRCalibration(t *testing.T) {
	for _, sir := range []float64{-20, -10, 0, 10} {
		s := &Scenario{
			Q:            4,
			VictimCenter: 64,
			SNRdB:        10000,
			Interferers:  []Interferer{{CenterOffset: 57, SIRdB: sir}},
		}
		r := dsp.NewRand(2)
		psdu := wifi.BuildPSDU(r.Bytes(96))
		c, err := s.Run(r, psdu, qpsk(t))
		if err != nil {
			t.Fatal(err)
		}
		// Measure achieved SIR over the victim frame extent.
		lo, hi := c.FrameStart, c.FrameStart+len(c.Victim.Samples)
		sig := make([]complex128, hi-lo)
		for i := range sig {
			sig[i] = c.Samples[lo+i] - c.InterferenceOnly[lo+i]
		}
		got := dsp.DB(dsp.Power(sig) / dsp.Power(c.InterferenceOnly[lo:hi]))
		// The interferer power is calibrated over the whole stream; over
		// the frame window it fluctuates by a little.
		if math.Abs(got-sir) > 1.5 {
			t.Fatalf("SIR %v dB: achieved %.2f dB", sir, got)
		}
	}
}

func TestInterfererCoversWholeFrame(t *testing.T) {
	s := &Scenario{
		Q:           1,
		SNRdB:       10000,
		Interferers: []Interferer{{CenterOffset: 0, SIRdB: 0}},
	}
	r := dsp.NewRand(3)
	psdu := wifi.BuildPSDU(r.Bytes(200))
	c, err := s.Run(r, psdu, qpsk(t))
	if err != nil {
		t.Fatal(err)
	}
	// Every victim symbol period must contain interference energy.
	g := c.Grid
	for pos := c.FrameStart; pos+g.SymLen() <= c.FrameStart+len(c.Victim.Samples); pos += g.SymLen() {
		if dsp.Power(c.InterferenceOnly[pos:pos+g.SymLen()]) <= 0 {
			t.Fatalf("no interference during symbol at %d", pos)
		}
	}
}

func TestACISpectralPlacement(t *testing.T) {
	// The interferer's in-band bins must carry far more power than the
	// victim's in-band bins when the victim is muted.
	s := &Scenario{
		Q:            4,
		VictimCenter: 64,
		SNRdB:        10000,
		Interferers:  []Interferer{{CenterOffset: 57, SIRdB: 0}},
	}
	r := dsp.NewRand(4)
	psdu := wifi.BuildPSDU(r.Bytes(96))
	c, err := s.Run(r, psdu, qpsk(t))
	if err != nil {
		t.Fatal(err)
	}
	d := ofdm.MustDemodulator(c.Grid)
	var inVictim, inInterf float64
	const count = 10
	for k := 0; k < count; k++ {
		start := c.FrameStart + k*c.Grid.SymLen()
		bins, err := d.Standard(c.InterferenceOnly, start)
		if err != nil {
			t.Fatal(err)
		}
		for sc := -26; sc <= 26; sc++ {
			v := bins[c.Grid.Bin(sc)]
			inVictim += real(v)*real(v) + imag(v)*imag(v)
			w := bins[c.Grid.Bin(sc+57)]
			inInterf += real(w)*real(w) + imag(w)*imag(w)
		}
	}
	if ratio := dsp.DB(inInterf / inVictim); ratio < 10 {
		t.Fatalf("interferer band only %.1f dB above victim band leakage", ratio)
	}
	if inVictim <= 0 {
		t.Fatal("expected nonzero adjacent-channel leakage into the victim band")
	}
}

func TestCCIWithMultipathChannels(t *testing.T) {
	s := &Scenario{
		Q:       1,
		SNRdB:   20,
		Channel: channel.Indoor2Tap(),
		Interferers: []Interferer{
			{CenterOffset: 0, SIRdB: 20, Channel: channel.Indoor2Tap()},
		},
	}
	r := dsp.NewRand(5)
	psdu := wifi.BuildPSDU(r.Bytes(46))
	c, err := s.Run(r, psdu, qpsk(t))
	if err != nil {
		t.Fatal(err)
	}
	// At SIR 20 dB the standard receiver still decodes.
	f, err := rx.NewFrame(c.Grid, c.Samples, c.FrameStart)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rx.DecodeData(f, qpsk(t), len(psdu), rx.StandardDecider{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FCSOK {
		t.Fatal("mild CCI should not break the standard receiver")
	}
}

func TestTwoInterferers(t *testing.T) {
	s := &Scenario{
		Q:            4,
		VictimCenter: 128,
		SNRdB:        10000,
		Interferers: []Interferer{
			{CenterOffset: 57, SIRdB: 0},
			{CenterOffset: -57, SIRdB: 0},
		},
	}
	r := dsp.NewRand(6)
	psdu := wifi.BuildPSDU(r.Bytes(46))
	c, err := s.Run(r, psdu, qpsk(t))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := c.FrameStart, c.FrameStart+len(c.Victim.Samples)
	sig := make([]complex128, hi-lo)
	for i := range sig {
		sig[i] = c.Samples[lo+i] - c.InterferenceOnly[lo+i]
	}
	// Total interference is the sum of two 0 dB interferers → SIR ≈ −3 dB.
	got := dsp.DB(dsp.Power(sig) / dsp.Power(c.InterferenceOnly[lo:hi]))
	if math.Abs(got-(-3)) > 1.5 {
		t.Fatalf("two-interferer SIR = %.2f dB, want ≈ -3", got)
	}
}

func TestVictimGridPlacement(t *testing.T) {
	s := &Scenario{Q: 4, VictimCenter: 96}
	g := s.VictimGrid()
	if g.NFFT != 256 || g.CP != 64 || g.Center != 96 {
		t.Fatalf("victim grid %+v", g)
	}
	s.Interferers = []Interferer{{CenterOffset: -40}}
	ig := s.InterfererGrid(0)
	if ig.Center != 56 {
		t.Fatalf("interferer center %d", ig.Center)
	}
}

func TestRunRejectsBadPSDU(t *testing.T) {
	s := &Scenario{Q: 1}
	if _, err := s.Run(dsp.NewRand(1), nil, qpsk(t)); err == nil {
		t.Fatal("empty PSDU should fail")
	}
}

// TestPooledScenarioDeterministic pins the pooled-tile path: the same
// seed and pool produce the identical composite (the sweep engine's
// reproducibility guarantee), the pooled waveform still carries the
// calibrated SIR, and the pool-less path is untouched by the pool's
// existence.
func TestPooledScenarioDeterministic(t *testing.T) {
	m := qpsk(t)
	pool := wifi.NewWaveformPool(4, 1)
	build := func(p *wifi.WaveformPool, seed int64) *Composite {
		s := &Scenario{
			Q:            4,
			VictimCenter: 64,
			SNRdB:        20,
			Channel:      channel.Indoor2Tap(),
			Interferers: []Interferer{
				{CenterOffset: 57, SIRdB: -10, Channel: channel.Indoor2Tap()},
				{CenterOffset: -57, SIRdB: -10},
			},
			Pool: p,
		}
		r := dsp.NewRand(seed)
		psdu := wifi.BuildPSDU(r.Bytes(56))
		c, err := s.Run(r, psdu, m)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := build(pool, 5), build(pool, 5)
	if dsp.MaxAbsDiff(a.Samples, b.Samples) != 0 {
		t.Fatal("pooled scenario not deterministic")
	}
	if dsp.Power(a.InterferenceOnly) == 0 {
		t.Fatal("pooled interference is silent")
	}
	if dsp.MaxAbsDiff(build(pool, 6).Samples, a.Samples) == 0 {
		t.Fatal("seed has no effect on pooled scenario")
	}
	// The pool-less composite must be what it always was, regardless of
	// whether a pool exists elsewhere in the process.
	c1, c2 := build(nil, 5), build(nil, 5)
	if dsp.MaxAbsDiff(c1.Samples, c2.Samples) != 0 {
		t.Fatal("pool-less scenario not deterministic")
	}
	if dsp.MaxAbsDiff(c1.Samples, a.Samples) == 0 {
		t.Fatal("pooled and pool-less paths unexpectedly coincide")
	}
}
