// Package channel models the wireless propagation effects between the
// simulated transmitters and the receiver: tapped-delay-line multipath,
// additive white Gaussian noise, carrier frequency offset, oscillator phase
// noise, and power scaling to calibrated SNR/SIR operating points.
//
// These models replace the USRP testbed of the paper (see DESIGN.md §2):
// CPRecycle only observes post-ADC baseband samples, so a sample-accurate
// baseband simulation exercises the identical receiver code paths.
package channel

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dsp"
)

// Multipath is a discrete tapped-delay-line channel. Taps[k] multiplies the
// input delayed by k samples; Taps[0] is the line-of-sight tap.
type Multipath struct {
	Taps []complex128
}

// NewMultipath returns a channel with the given taps. An empty tap list is
// replaced by a perfect single-tap channel.
func NewMultipath(taps []complex128) *Multipath {
	if len(taps) == 0 {
		taps = []complex128{1}
	}
	cp := make([]complex128, len(taps))
	copy(cp, taps)
	return &Multipath{Taps: cp}
}

// Identity returns the distortion-free single-tap channel.
func Identity() *Multipath { return NewMultipath(nil) }

// Indoor2Tap returns the default indoor profile used throughout the
// experiments: a dominant LOS tap plus one reflection one sample later
// (50 ns at 20 Msps — the nanosecond-scale delay spread the paper cites
// from indoor measurement studies [18,29,55]), normalised to unit energy.
func Indoor2Tap() *Multipath {
	taps := []complex128{1, complex(0.3, 0.1)}
	return normalized(taps)
}

// Exponential returns an nTaps-tap channel with exponentially decaying
// power profile (decay per tap in dB) and random uniform phases, normalised
// to unit energy. Used to sweep delay spread for the Fig. 14 experiment.
func Exponential(r *dsp.Rand, nTaps int, decayDB float64) *Multipath {
	if nTaps < 1 {
		nTaps = 1
	}
	taps := make([]complex128, nTaps)
	for k := range taps {
		amp := math.Sqrt(dsp.FromDB(-decayDB * float64(k)))
		taps[k] = cmplx.Rect(amp, 2*math.Pi*r.Float64())
	}
	return normalized(taps)
}

func normalized(taps []complex128) *Multipath {
	e := dsp.Energy(taps)
	if e > 0 {
		dsp.Scale(taps, 1/math.Sqrt(e))
	}
	return &Multipath{Taps: taps}
}

// DelaySpread returns the channel's maximum excess delay in samples (the
// number of cyclic-prefix samples rendered ISI-affected).
func (m *Multipath) DelaySpread() int {
	last := 0
	for k, t := range m.Taps {
		if cmplx.Abs(t) > 1e-12 {
			last = k
		}
	}
	return last
}

// Apply convolves x with the channel taps, returning len(x) samples (the
// tail beyond the input length is truncated, matching a continuously
// running receiver's view). The direct form writes each output sample
// once, accumulating taps in the same order as dsp.Conv (identical
// floating-point results), and is much faster for the few-tap channels the
// experiments use than materialising the full convolution.
func (m *Multipath) Apply(x []complex128) []complex128 {
	taps := m.Taps
	out := make([]complex128, len(x))
	for p := range out {
		kmax := len(taps) - 1
		if kmax > p {
			kmax = p
		}
		var acc complex128
		for k := kmax; k >= 0; k-- {
			acc += x[p-k] * taps[k]
		}
		out[p] = acc
	}
	return out
}

// FrequencyResponse returns the channel's frequency response on an n-point
// FFT grid.
func (m *Multipath) FrequencyResponse(n int) []complex128 {
	h := make([]complex128, n)
	copy(h, m.Taps)
	if len(m.Taps) > n {
		panic(fmt.Sprintf("channel: %d taps exceed FFT size %d", len(m.Taps), n))
	}
	p := dsp.MustPlanFor(n)
	p.Forward(h)
	return h
}

// AWGN adds complex Gaussian noise of the given total power (variance) to
// x in place and returns x.
func AWGN(r *dsp.Rand, x []complex128, noisePower float64) []complex128 {
	if noisePower <= 0 {
		return x
	}
	s := math.Sqrt(noisePower / 2)
	for i := range x {
		x[i] += complex(r.NormFloat64()*s, r.NormFloat64()*s)
	}
	return x
}

// ApplyCFO rotates x in place by a carrier frequency offset expressed as a
// fraction of the subcarrier spacing on an n-point grid (cfo=0.01 ≈ 3 kHz
// at 802.11's 312.5 kHz spacing). startSample keeps the rotation
// phase-continuous across blocks.
func ApplyCFO(x []complex128, cfo float64, n int, startSample int) {
	dsp.FreqShift(x, cfo, n, startSample)
}

// ApplyPhaseNoise applies a Wiener phase-noise process with the given
// per-sample phase increment standard deviation (radians) to x in place.
func ApplyPhaseNoise(r *dsp.Rand, x []complex128, sigma float64) {
	if sigma <= 0 {
		return
	}
	phase := 0.0
	for i := range x {
		phase += r.NormFloat64() * sigma
		s, c := math.Sincos(phase)
		x[i] *= complex(c, s)
	}
}

// ScaleToPower scales x in place so its average power equals target, and
// returns the applied gain. A zero-power input is returned unchanged with
// gain 0.
func ScaleToPower(x []complex128, target float64) float64 {
	p := dsp.Power(x)
	if p <= 0 {
		return 0
	}
	g := math.Sqrt(target / p)
	dsp.Scale(x, g)
	return g
}

// GainForSIR returns the gain to apply to an interference waveform of power
// interfPower so that the signal-to-interference ratio against a signal of
// power sigPower equals sirDB.
func GainForSIR(sigPower, interfPower, sirDB float64) float64 {
	if interfPower <= 0 {
		return 0
	}
	targetInterf := sigPower / dsp.FromDB(sirDB)
	return math.Sqrt(targetInterf / interfPower)
}

// NoisePowerForSNR returns the noise power that yields snrDB against a
// signal of power sigPower.
func NoisePowerForSNR(sigPower, snrDB float64) float64 {
	return sigPower / dsp.FromDB(snrDB)
}
