package channel

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
)

func TestIdentityChannel(t *testing.T) {
	r := dsp.NewRand(1)
	x := r.CNVector(100, 1)
	y := Identity().Apply(x)
	if dsp.MaxAbsDiff(x, y) > 1e-12 {
		t.Fatal("identity channel altered the signal")
	}
	if Identity().DelaySpread() != 0 {
		t.Fatal("identity delay spread should be 0")
	}
}

func TestNewMultipathCopiesTaps(t *testing.T) {
	taps := []complex128{1, 0.5}
	m := NewMultipath(taps)
	taps[0] = 99
	if m.Taps[0] == 99 {
		t.Fatal("NewMultipath must copy its taps")
	}
	if NewMultipath(nil).Taps[0] != 1 {
		t.Fatal("empty taps should become identity")
	}
}

func TestMultipathDelaySpread(t *testing.T) {
	m := NewMultipath([]complex128{1, 0, 0.2})
	if m.DelaySpread() != 2 {
		t.Fatalf("delay spread = %d, want 2", m.DelaySpread())
	}
}

func TestIndoor2TapUnitEnergy(t *testing.T) {
	m := Indoor2Tap()
	if e := dsp.Energy(m.Taps); math.Abs(e-1) > 1e-12 {
		t.Fatalf("energy = %v", e)
	}
	if m.DelaySpread() != 1 {
		t.Fatalf("delay spread = %d", m.DelaySpread())
	}
}

func TestExponentialProfile(t *testing.T) {
	r := dsp.NewRand(2)
	m := Exponential(r, 5, 3)
	if len(m.Taps) != 5 {
		t.Fatalf("tap count %d", len(m.Taps))
	}
	if e := dsp.Energy(m.Taps); math.Abs(e-1) > 1e-12 {
		t.Fatalf("energy = %v", e)
	}
	// Powers decay monotonically.
	for k := 1; k < 5; k++ {
		if cmplx.Abs(m.Taps[k]) >= cmplx.Abs(m.Taps[k-1]) {
			t.Fatalf("tap %d does not decay", k)
		}
	}
	if got := Exponential(r, 0, 3); len(got.Taps) != 1 {
		t.Fatal("nTaps<1 should clamp to 1")
	}
}

func TestApplyPreservesLength(t *testing.T) {
	r := dsp.NewRand(3)
	x := r.CNVector(50, 1)
	y := Indoor2Tap().Apply(x)
	if len(y) != len(x) {
		t.Fatalf("output length %d", len(y))
	}
}

func TestApplyMatchesManualConvolution(t *testing.T) {
	m := NewMultipath([]complex128{1, 0.5i})
	x := []complex128{1, 2, 3}
	y := m.Apply(x)
	want := []complex128{1, 2 + 0.5i, 3 + 1i}
	if dsp.MaxAbsDiff(y, want) > 1e-12 {
		t.Fatalf("Apply = %v, want %v", y, want)
	}
}

func TestFrequencyResponseMatchesDFT(t *testing.T) {
	m := Indoor2Tap()
	h := m.FrequencyResponse(64)
	// H[0] = sum of taps.
	var sum complex128
	for _, tp := range m.Taps {
		sum += tp
	}
	if cmplx.Abs(h[0]-sum) > 1e-9 {
		t.Fatalf("H[0] = %v, want %v", h[0], sum)
	}
	// Flat channel has flat response.
	flat := Identity().FrequencyResponse(16)
	for _, v := range flat {
		if cmplx.Abs(v-1) > 1e-9 {
			t.Fatal("identity response not flat")
		}
	}
}

func TestFrequencyResponsePanicsOnTooManyTaps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMultipath(make([]complex128, 65)).FrequencyResponse(64)
}

func TestCircularConvolutionProperty(t *testing.T) {
	// For an OFDM symbol with CP at least as long as the channel, the
	// channel acts as per-subcarrier multiplication by H[k]: the core
	// reason OFDM works, and a strong end-to-end check of Apply.
	f := func(seed int64) bool {
		r := dsp.NewRand(seed)
		const n, cp = 64, 16
		m := Exponential(r, 1+r.Intn(8), 2)
		bins := r.CNVector(n, 1)
		body := dsp.IFFT(bins)
		sym := append(append([]complex128{}, body[n-cp:]...), body...)
		rx := m.Apply(sym)
		got := dsp.FFT(rx[cp : cp+n])
		h := m.FrequencyResponse(n)
		for k := 0; k < n; k++ {
			if cmplx.Abs(got[k]-h[k]*bins[k]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAWGNPower(t *testing.T) {
	r := dsp.NewRand(4)
	x := make([]complex128, 100000)
	AWGN(r, x, 0.5)
	if p := dsp.Power(x); math.Abs(p-0.5) > 0.02 {
		t.Fatalf("noise power = %v, want 0.5", p)
	}
	y := []complex128{1, 2}
	AWGN(r, y, 0)
	if y[0] != 1 || y[1] != 2 {
		t.Fatal("zero-power AWGN must be a no-op")
	}
}

func TestApplyCFORotation(t *testing.T) {
	x := make([]complex128, 64)
	for i := range x {
		x[i] = 1
	}
	ApplyCFO(x, 1, 64, 0) // one full subcarrier of offset
	// Should now be a tone at bin 1.
	X := dsp.FFT(x)
	if cmplx.Abs(X[1]) < 63 {
		t.Fatalf("|X[1]| = %v", cmplx.Abs(X[1]))
	}
}

func TestPhaseNoisePreservesMagnitude(t *testing.T) {
	r := dsp.NewRand(5)
	x := r.CNVector(100, 1)
	mags := make([]float64, len(x))
	for i, v := range x {
		mags[i] = cmplx.Abs(v)
	}
	ApplyPhaseNoise(r, x, 0.01)
	for i, v := range x {
		if math.Abs(cmplx.Abs(v)-mags[i]) > 1e-12 {
			t.Fatal("phase noise changed magnitude")
		}
	}
	y := []complex128{1 + 1i}
	ApplyPhaseNoise(r, y, 0)
	if y[0] != 1+1i {
		t.Fatal("zero sigma must be a no-op")
	}
}

func TestScaleToPower(t *testing.T) {
	r := dsp.NewRand(6)
	x := r.CNVector(1000, 3)
	g := ScaleToPower(x, 0.25)
	if g <= 0 {
		t.Fatal("gain should be positive")
	}
	if p := dsp.Power(x); math.Abs(p-0.25) > 1e-9 {
		t.Fatalf("power after scaling = %v", p)
	}
	zero := make([]complex128, 5)
	if g := ScaleToPower(zero, 1); g != 0 {
		t.Fatal("zero-power input should return gain 0")
	}
}

func TestGainForSIR(t *testing.T) {
	r := dsp.NewRand(7)
	sig := r.CNVector(5000, 1)
	interf := r.CNVector(5000, 4)
	g := GainForSIR(dsp.Power(sig), dsp.Power(interf), -10)
	dsp.Scale(interf, g)
	sir := dsp.DB(dsp.Power(sig) / dsp.Power(interf))
	if math.Abs(sir-(-10)) > 0.01 {
		t.Fatalf("achieved SIR = %v dB, want -10", sir)
	}
	if GainForSIR(1, 0, 0) != 0 {
		t.Fatal("zero interference power should give gain 0")
	}
}

func TestNoisePowerForSNR(t *testing.T) {
	if p := NoisePowerForSNR(1, 10); math.Abs(p-0.1) > 1e-12 {
		t.Fatalf("noise power = %v, want 0.1", p)
	}
	if p := NoisePowerForSNR(2, 3); math.Abs(p-2/math.Pow(10, 0.3)) > 1e-12 {
		t.Fatalf("noise power = %v", p)
	}
}

func BenchmarkMultipathApply(b *testing.B) {
	m := Indoor2Tap()
	x := dsp.NewRand(1).CNVector(8000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Apply(x)
	}
}
