package ofdm

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
)

func randomValues(r *dsp.Rand, scs []int) map[int]complex128 {
	out := make(map[int]complex128, len(scs))
	for _, sc := range scs {
		out[sc] = cmplx.Rect(1, 2*math.Pi*r.Float64())
	}
	return out
}

func TestGridValidate(t *testing.T) {
	if err := Native80211Grid().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Grid{
		{NFFT: 48, CP: 12},
		{NFFT: 64, CP: -1},
		{NFFT: 64, CP: 64},
	}
	for _, g := range bad {
		if g.Validate() == nil {
			t.Errorf("grid %+v should be invalid", g)
		}
	}
}

func TestGridBin(t *testing.T) {
	g := Native80211Grid()
	if g.Bin(1) != 1 || g.Bin(-1) != 63 || g.Bin(-26) != 38 {
		t.Fatal("native bin mapping wrong")
	}
	w := WideGrid(64, 16, 4, 100)
	if w.NFFT != 256 || w.CP != 64 {
		t.Fatalf("WideGrid numerology: %+v", w)
	}
	if w.Bin(0) != 100 || w.Bin(-26) != 74 || w.Bin(26) != 126 {
		t.Fatal("wide bin mapping wrong")
	}
	// wraparound
	w2 := WideGrid(64, 16, 4, 250)
	if w2.Bin(10) != 4 {
		t.Fatalf("wraparound bin = %d", w2.Bin(10))
	}
}

func TestSymLen(t *testing.T) {
	if Native80211Grid().SymLen() != 80 {
		t.Fatal("native symbol length should be 80")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	specs := Table1()
	if len(specs) != 4 {
		t.Fatalf("Table 1 rows = %d", len(specs))
	}
	first := specs[0]
	if first.Standard != "802.11a/g" || first.FFTSize != 64 || first.CPSize != 16 || first.DurationUs != 0.8 {
		t.Fatalf("row 1 = %+v", first)
	}
	for _, s := range specs {
		// CP is always 1/4 of the FFT size (long GI), duration scales with size.
		if s.CPSize*4 != s.FFTSize {
			t.Errorf("%s %v MHz: CP %d not FFT/4", s.Standard, s.BandwidthHz/1e6, s.CPSize)
		}
		// The paper's duration column scales CP samples at a fixed 20 Msps
		// reference (16 → 0.8 µs, 32 → 1.6 µs, …); reproduce it as printed.
		wantDur := float64(s.CPSize) / 20
		if math.Abs(wantDur-s.DurationUs) > 1e-9 {
			t.Errorf("%s: duration %v, computed %v", s.Standard, s.DurationUs, wantDur)
		}
	}
	if len(LTETable()) != 2 {
		t.Fatal("LTE table rows")
	}
}

func TestModulatorLoopback(t *testing.T) {
	g := Native80211Grid()
	m := MustModulator(g)
	d := MustDemodulator(g)
	r := dsp.NewRand(1)
	vals := randomValues(r, DataSubcarriers())
	sym := m.Symbol(vals)
	if len(sym) != g.SymLen() {
		t.Fatalf("symbol length %d", len(sym))
	}
	bins, err := d.Standard(sym, 0)
	if err != nil {
		t.Fatal(err)
	}
	for sc, want := range vals {
		if got := bins[g.Bin(sc)]; cmplx.Abs(got-want) > 1e-9 {
			t.Fatalf("sc %d: got %v want %v", sc, got, want)
		}
	}
	// Unused bins stay empty.
	if got := bins[g.Bin(0)]; cmplx.Abs(got) > 1e-9 {
		t.Fatal("DC bin should be empty")
	}
}

func TestCyclicPrefixIsCopyOfTail(t *testing.T) {
	g := Native80211Grid()
	m := MustModulator(g)
	sym := m.Symbol(randomValues(dsp.NewRand(2), DataSubcarriers()))
	for i := 0; i < g.CP; i++ {
		if cmplx.Abs(sym[i]-sym[g.NFFT+i]) > 1e-9 {
			t.Fatalf("CP sample %d is not a copy of the tail", i)
		}
	}
}

func TestSegmentPhaseCorrectionProperty(t *testing.T) {
	// Proposition 3.1: any ISI-free segment, after phase correction, equals
	// the standard window exactly in the absence of noise.
	g := Native80211Grid()
	m := MustModulator(g)
	d := MustDemodulator(g)
	f := func(seed int64) bool {
		r := dsp.NewRand(seed)
		vals := randomValues(r, DataSubcarriers())
		sym := m.Symbol(vals)
		std, err := d.Standard(sym, 0)
		if err != nil {
			return false
		}
		off := r.Intn(g.CP + 1)
		seg, err := segmentRef(d, sym, 0, off)
		if err != nil {
			return false
		}
		return dsp.MaxAbsDiff(std, seg) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRejectsBadOffset(t *testing.T) {
	g := Native80211Grid()
	d := MustDemodulator(g)
	rx := make([]complex128, g.SymLen())
	if _, err := d.Segments(rx, 0, []int{-1}, nil); err == nil {
		t.Fatal("negative offset should fail")
	}
	if _, err := d.Segments(rx, 0, []int{g.CP + 1}, nil); err == nil {
		t.Fatal("offset beyond CP should fail")
	}
}

func TestWindowAtBounds(t *testing.T) {
	d := MustDemodulator(Native80211Grid())
	if _, err := d.WindowAt(make([]complex128, 63), 0); err == nil {
		t.Fatal("short rx should fail")
	}
	if _, err := d.WindowAt(make([]complex128, 100), -1); err == nil {
		t.Fatal("negative start should fail")
	}
}

func TestCorrectSegmentPhaseZeroDelta(t *testing.T) {
	r := dsp.NewRand(3)
	x := r.CNVector(64, 1)
	y := append([]complex128{}, x...)
	CorrectSegmentPhase(y, 0)
	if dsp.MaxAbsDiff(x, y) != 0 {
		t.Fatal("delta 0 must be identity")
	}
}

func TestWideGridEmbeddingEquivalence(t *testing.T) {
	// A transmitter embedded in a 4× oversampled band must deliver the same
	// subcarrier values through the wide demodulator.
	w := WideGrid(64, 16, 4, 128)
	m := MustModulator(w)
	d := MustDemodulator(w)
	r := dsp.NewRand(4)
	vals := randomValues(r, DataSubcarriers())
	sym := m.Symbol(vals)
	if len(sym) != 320 {
		t.Fatalf("wide symbol length %d", len(sym))
	}
	bins, err := d.Standard(sym, 0)
	if err != nil {
		t.Fatal(err)
	}
	for sc, want := range vals {
		if got := bins[w.Bin(sc)]; cmplx.Abs(got-want) > 1e-9 {
			t.Fatalf("wide sc %d: got %v want %v", sc, got, want)
		}
	}
	// Segments behave identically on the wide grid.
	seg, err := segmentRef(d, sym, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if dsp.MaxAbsDiff(bins, seg) > 1e-8 {
		t.Fatal("wide-grid segment correction failed")
	}
}

func TestGainForUnitPower(t *testing.T) {
	g := Native80211Grid()
	m := MustModulator(g)
	r := dsp.NewRand(5)
	scs := DataSubcarriers()
	// Average over many random symbols.
	var p float64
	const trials = 200
	for i := 0; i < trials; i++ {
		sym := m.Symbol(randomValues(r, scs))
		dsp.Scale(sym, m.GainForUnitPower(len(scs)))
		p += dsp.Power(sym)
	}
	p /= trials
	if math.Abs(p-1) > 0.05 {
		t.Fatalf("normalised power = %v, want ~1", p)
	}
	if m.GainForUnitPower(0) != 0 {
		t.Fatal("zero subcarriers should give zero gain")
	}
}

func TestSegmentPlan(t *testing.T) {
	offs, err := SegmentPlan(16, 1, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 16 || offs[0] != 1 || offs[len(offs)-1] != 16 {
		t.Fatalf("plan = %v", offs)
	}
	// Stride 4 on a 64-sample CP: paper's 16 segments.
	offs, err = SegmentPlan(64, 4, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 16 || offs[len(offs)-1] != 64 || offs[0] != 4 {
		t.Fatalf("wide plan = %v", offs)
	}
	// numSegments=1 degrades to the standard receiver.
	offs, err = SegmentPlan(16, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 1 || offs[0] != 16 {
		t.Fatalf("degenerate plan = %v", offs)
	}
	// Clipping at minOffset.
	offs, err = SegmentPlan(16, 2, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range offs {
		if o < 10 || o > 16 {
			t.Fatalf("offset %d outside ISI-free region", o)
		}
	}
}

func TestSegmentPlanErrors(t *testing.T) {
	if _, err := SegmentPlan(16, 0, 4, 0); err == nil {
		t.Fatal("zero stride")
	}
	if _, err := SegmentPlan(16, 1, 0, 0); err == nil {
		t.Fatal("zero segments")
	}
	if _, err := SegmentPlan(16, 1, 4, 17); err == nil {
		t.Fatal("minOffset beyond CP")
	}
}

func TestDataSubcarriers(t *testing.T) {
	scs := DataSubcarriers()
	if len(scs) != 48 {
		t.Fatalf("data subcarriers = %d, want 48", len(scs))
	}
	seen := map[int]bool{}
	for _, sc := range scs {
		if sc == 0 || sc < -26 || sc > 26 || seen[sc] {
			t.Fatalf("bad data subcarrier %d", sc)
		}
		for _, p := range PilotSubcarriers() {
			if sc == p {
				t.Fatalf("data subcarrier %d collides with pilot", sc)
			}
		}
		seen[sc] = true
	}
}

func TestPilotValues(t *testing.T) {
	// p₀ = 1: SIGNAL symbol pilots are {1,1,1,-1} on {-21,-7,7,21}.
	v := PilotValues(0)
	if v[-21] != 1 || v[-7] != 1 || v[7] != 1 || v[21] != -1 {
		t.Fatalf("symbol-0 pilots = %v", v)
	}
	// First polarity values from the standard: 1,1,1,1,-1,-1,-1,1.
	want := []float64{1, 1, 1, 1, -1, -1, -1, 1}
	for n, w := range want {
		if PilotPolarity(n) != w {
			t.Fatalf("p_%d = %v, want %v", n, PilotPolarity(n), w)
		}
	}
	// Sequence is 127-periodic.
	for n := 0; n < 10; n++ {
		if PilotPolarity(n) != PilotPolarity(n+127) {
			t.Fatal("polarity not 127-periodic")
		}
	}
}

func TestLTFValues(t *testing.T) {
	vals := LTFValues()
	if len(vals) != 52 {
		t.Fatalf("LTF occupies %d subcarriers, want 52", len(vals))
	}
	for sc, v := range vals {
		if sc == 0 {
			t.Fatal("LTF must not occupy DC")
		}
		if cmplx.Abs(v) != 1 {
			t.Fatalf("LTF value at %d is %v, want ±1", sc, v)
		}
		if LTFValue(sc) != v {
			t.Fatal("LTFValue disagrees with LTFValues")
		}
	}
	if LTFValue(0) != 0 || LTFValue(27) != 0 || LTFValue(-27) != 0 {
		t.Fatal("out-of-band LTF values must be 0")
	}
	// Spot values from the standard: L(-26)=1, L(-25)=1, L(-24)=-1, L(26)=1.
	if LTFValue(-26) != 1 || LTFValue(-24) != -1 || LTFValue(26) != 1 {
		t.Fatal("LTF spot values wrong")
	}
}

func TestSTFValues(t *testing.T) {
	vals := STFValues()
	if len(vals) != 12 {
		t.Fatalf("STF occupies %d subcarriers, want 12", len(vals))
	}
	for sc, v := range vals {
		if sc%4 != 0 {
			t.Fatalf("STF subcarrier %d not a multiple of 4", sc)
		}
		want := math.Sqrt(13.0/6.0) * math.Sqrt2
		if math.Abs(cmplx.Abs(v)-want) > 1e-12 {
			t.Fatalf("STF magnitude at %d = %v", sc, cmplx.Abs(v))
		}
	}
}

func TestPreambleStructure(t *testing.T) {
	g := Native80211Grid()
	m := MustModulator(g)
	pre := Preamble(m)
	if len(pre) != 320 || PreambleLen(g) != 320 {
		t.Fatalf("preamble length %d, want 320", len(pre))
	}
	// STF is periodic with period N/4 = 16 over its 160 samples.
	for i := 0; i+16 < 160; i++ {
		if cmplx.Abs(pre[i]-pre[i+16]) > 1e-9 {
			t.Fatalf("STF not 16-periodic at sample %d", i)
		}
	}
	// The two LTF bodies are identical.
	ltf1 := pre[192:256]
	ltf2 := pre[256:320]
	if dsp.MaxAbsDiff(ltf1, ltf2) > 1e-9 {
		t.Fatal("LTF bodies differ")
	}
	// GI2 is the cyclic extension of the LTF body.
	for i := 0; i < 32; i++ {
		if cmplx.Abs(pre[160+i]-pre[192+32+i]) > 1e-9 {
			t.Fatalf("GI2 sample %d is not cyclic extension", i)
		}
	}
}

func TestPreambleLTFDemodulates(t *testing.T) {
	// Demodulating either LTF symbol must return the known LTF values, from
	// every CP segment.
	g := Native80211Grid()
	m := MustModulator(g)
	d := MustDemodulator(g)
	pre := Preamble(m)
	starts := LTFSymbolStarts(g)
	for _, start := range starts {
		for _, off := range []int{0, 5, 16} {
			bins, err := segmentRef(d, pre, start, off)
			if err != nil {
				t.Fatal(err)
			}
			for sc, want := range LTFValues() {
				if got := bins[g.Bin(sc)]; cmplx.Abs(got-want) > 1e-8 {
					t.Fatalf("LTF@%d seg %d sc %d: got %v want %v", start, off, sc, got, want)
				}
			}
		}
	}
}

func TestPreambleOnWideGrid(t *testing.T) {
	w := WideGrid(64, 16, 4, 96)
	m := MustModulator(w)
	d := MustDemodulator(w)
	pre := Preamble(m)
	if len(pre) != 320*4 {
		t.Fatalf("wide preamble length %d", len(pre))
	}
	starts := LTFSymbolStarts(w)
	bins, err := segmentRef(d, pre, starts[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	for sc, want := range LTFValues() {
		if got := bins[w.Bin(sc)]; cmplx.Abs(got-want) > 1e-8 {
			t.Fatalf("wide LTF sc %d: got %v want %v", sc, got, want)
		}
	}
}

func TestSymbolFromBins(t *testing.T) {
	g := Native80211Grid()
	m := MustModulator(g)
	bins := make([]complex128, 64)
	bins[5] = 1
	sym := m.SymbolFromBins(bins)
	d := MustDemodulator(g)
	got, err := d.Standard(sym, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(got[5]-1) > 1e-9 {
		t.Fatalf("bin 5 = %v", got[5])
	}
}

func TestSymbolFromBinsPanicsOnWrongLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustModulator(Native80211Grid()).SymbolFromBins(make([]complex128, 32))
}

func BenchmarkModulateSymbol(b *testing.B) {
	m := MustModulator(Native80211Grid())
	vals := randomValues(dsp.NewRand(1), DataSubcarriers())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Symbol(vals)
	}
}

func BenchmarkDemodulateSegment(b *testing.B) {
	g := Native80211Grid()
	m := MustModulator(g)
	d := MustDemodulator(g)
	sym := m.Symbol(randomValues(dsp.NewRand(1), DataSubcarriers()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := segmentRef(d, sym, 0, i%17); err != nil {
			b.Fatal(err)
		}
	}
}
