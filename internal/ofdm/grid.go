// Package ofdm implements the OFDM physical layer elements shared by the
// transmitter, the standard receiver and the CPRecycle receiver: subcarrier
// grids, cyclic-prefix modulation, the IEEE 802.11a/g training sequences and
// pilots, and — central to the paper — extraction of the P ISI-free FFT
// segments from the cyclic prefix together with the deterministic phase
// correction of Proposition 3.1 / Eq. 2.
//
// A Grid may describe either a native 64-point 802.11 channel or a
// transmitter embedded at an arbitrary block offset inside a wider composite
// band (the wide grid used to simulate adjacent-channel scenarios; the
// composite band is simply an oversampled view, so all signal properties are
// preserved).
//
// Segment extraction is batched: Demodulator.Segments / SegmentsOn
// compute all P windows of a symbol with one seed FFT plus sliding-DFT
// updates (optionally restricted to a fixed bin subset) and cached
// phase-ramp tables. The retired one-FFT-per-window form survives only as
// the independent reference implementation inside the package tests.
package ofdm

import (
	"fmt"

	"repro/internal/dsp"
)

// Grid describes one transmitter's OFDM numerology within a (possibly
// wider) sampled band.
type Grid struct {
	// NFFT is the FFT size of the sampled band in samples.
	NFFT int
	// CP is the cyclic prefix length in samples of the sampled band.
	CP int
	// Center is the FFT bin corresponding to this transmitter's DC
	// subcarrier. 0 for a native (baseband-centred) grid.
	Center int
}

// Validate reports whether the grid is usable.
func (g Grid) Validate() error {
	if !dsp.IsPow2(g.NFFT) {
		return fmt.Errorf("ofdm: NFFT %d is not a power of two", g.NFFT)
	}
	if g.CP < 0 || g.CP >= g.NFFT {
		return fmt.Errorf("ofdm: CP %d out of range for NFFT %d", g.CP, g.NFFT)
	}
	return nil
}

// SymLen returns the total OFDM symbol length CP+NFFT in samples.
func (g Grid) SymLen() int { return g.CP + g.NFFT }

// Bin maps a signed logical subcarrier index (… −2, −1, 1, 2 … relative to
// this transmitter's DC) to the FFT bin of the sampled band.
func (g Grid) Bin(sc int) int {
	b := (g.Center + sc) % g.NFFT
	if b < 0 {
		b += g.NFFT
	}
	return b
}

// Native80211Grid returns the 20 MHz 802.11a/g numerology: 64-point FFT,
// 16-sample cyclic prefix.
func Native80211Grid() Grid { return Grid{NFFT: 64, CP: 16} }

// WideGrid returns a grid for a transmitter using a native (nfft, cp)
// numerology embedded in a band oversampled by factor q, with its DC on
// composite bin center. Symbol durations in seconds are unchanged: every
// native sample becomes q composite samples.
func WideGrid(nfft, cp, q, center int) Grid {
	return Grid{NFFT: nfft * q, CP: cp * q, Center: center}
}

// CPSpec records the cyclic prefix provisioning of a standard channel
// width, reproducing Table 1 of the paper.
type CPSpec struct {
	Standard    string
	BandwidthHz float64
	FFTSize     int
	CPSize      int     // long guard interval, samples
	CPShort     int     // short guard interval, samples (0 when n/a)
	DurationUs  float64 // long GI duration in µs
}

// Table1 lists the 802.11 cyclic prefix specifications exactly as in the
// paper's Table 1.
func Table1() []CPSpec {
	return []CPSpec{
		{"802.11a/g", 20e6, 64, 16, 0, 0.8},
		{"802.11n/ac", 40e6, 128, 32, 16, 1.6},
		{"802.11n/ac", 80e6, 256, 64, 32, 3.2},
		{"802.11n/ac", 160e6, 512, 128, 64, 6.4},
	}
}

// LTECPSpec describes the LTE provisioning quoted in §2.2 of the paper:
// normal CP ≈ 4.7 µs (~7 % overhead) and extended CP 16.7 µs (25 %).
type LTECPSpec struct {
	Kind       string
	DurationUs float64
	OverheadPc float64
}

// LTETable returns the LTE cyclic prefix figures cited in the paper.
func LTETable() []LTECPSpec {
	return []LTECPSpec{
		{"normal", 4.7, 7},
		{"extended", 16.7, 25},
	}
}
