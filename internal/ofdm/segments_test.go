package ofdm

import (
	"testing"

	"repro/internal/dsp"
)

func testStream(seed int64, n int) []complex128 {
	r := dsp.NewRand(seed)
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

// segmentRef is the retired one-FFT-per-window segment demodulation, kept
// in the tests as the independent reference for the batch sliding-DFT
// path: a full FFT of the window starting cpOffset samples into the CP
// (1/N scaled) followed by the Eq. 2 phase-ramp correction. The ramp
// comes from the same cached tables the batch path uses, so the reference
// is bit-identical to the deleted Demodulator.Segment.
func segmentRef(d *Demodulator, rx []complex128, symStart, cpOffset int) ([]complex128, error) {
	out, err := d.WindowAt(rx, symStart+cpOffset)
	if err != nil {
		return nil, err
	}
	CorrectSegmentPhase(out, d.Grid().CP-cpOffset)
	return out, nil
}

// TestSegmentsMatchesRepeatedSegment pins the batch sliding-DFT path to the
// original one-FFT-per-window path across grids, strides and symbol
// positions. The first window is bit-identical (same seed FFT); the slid
// windows must agree to sliding-DFT drift tolerance.
func TestSegmentsMatchesRepeatedSegment(t *testing.T) {
	for _, tc := range []struct {
		name   string
		g      Grid
		stride int
	}{
		{"native-stride1", Native80211Grid(), 1},
		{"native-stride3", Native80211Grid(), 3},
		{"wide4-stride4", WideGrid(64, 16, 4, 64), 4},
		{"wide4-stride2", WideGrid(64, 16, 4, 64), 2},
		{"wide2-stride5", WideGrid(64, 16, 2, 32), 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := MustDemodulator(tc.g)
			rx := testStream(99, 4*tc.g.SymLen())
			offs, err := SegmentPlan(tc.g.CP, tc.stride, 16, 0)
			if err != nil {
				t.Fatal(err)
			}
			var dst [][]complex128
			for _, symStart := range []int{0, tc.g.SymLen(), 2 * tc.g.SymLen()} {
				dst, err = d.Segments(rx, symStart, offs, dst)
				if err != nil {
					t.Fatal(err)
				}
				for i, off := range offs {
					want, err := segmentRef(d, rx, symStart, off)
					if err != nil {
						t.Fatal(err)
					}
					diff := dsp.MaxAbsDiff(dst[i], want)
					if i == 0 && diff != 0 {
						t.Fatalf("offset %d (seed window): diff %g, want bit-identical", off, diff)
					}
					if diff > 1e-12 {
						t.Fatalf("offset %d: batch window differs from direct FFT by %g", off, diff)
					}
				}
			}
		})
	}
}

func TestSegmentsValidation(t *testing.T) {
	g := Native80211Grid()
	d := MustDemodulator(g)
	rx := testStream(1, 3*g.SymLen())
	if _, err := d.Segments(rx, 0, nil, nil); err == nil {
		t.Fatal("empty offsets accepted")
	}
	if _, err := d.Segments(rx, 0, []int{4, 4}, nil); err == nil {
		t.Fatal("non-increasing offsets accepted")
	}
	if _, err := d.Segments(rx, 0, []int{-1, 4}, nil); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := d.Segments(rx, 0, []int{4, g.CP + 1}, nil); err == nil {
		t.Fatal("offset beyond CP accepted")
	}
	if _, err := d.Segments(rx, len(rx)-g.NFFT, []int{0, g.CP}, nil); err == nil {
		t.Fatal("window past the stream end accepted")
	}
}

func TestWindowIntoMatchesWindowAt(t *testing.T) {
	g := WideGrid(64, 16, 2, 0)
	d := MustDemodulator(g)
	rx := testStream(5, 2*g.SymLen())
	want, err := d.WindowAt(rx, 17)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]complex128, g.NFFT)
	if err := d.WindowInto(got, rx, 17); err != nil {
		t.Fatal(err)
	}
	if dsp.MaxAbsDiff(got, want) != 0 {
		t.Fatal("WindowInto differs from WindowAt")
	}
	if err := d.WindowInto(make([]complex128, 3), rx, 0); err == nil {
		t.Fatal("short dst accepted")
	}
}

// benchGridAndPlan is the Fig. 8 receiver numerology: 4× composite band,
// 16 segments at native-sample stride.
func benchGridAndPlan(b *testing.B) (Grid, []int, []complex128) {
	b.Helper()
	g := WideGrid(64, 16, 4, 64)
	offs, err := SegmentPlan(g.CP, 4, 16, 8)
	if err != nil {
		b.Fatal(err)
	}
	return g, offs, testStream(2, 4*g.SymLen())
}

// BenchmarkSegmentRepeatedFFT is the pre-batch hot path: one independent
// FFT (plus a fresh allocation and a phase-ramp pass) per segment window.
func BenchmarkSegmentRepeatedFFT(b *testing.B) {
	g, offs, rx := benchGridAndPlan(b)
	d := MustDemodulator(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, off := range offs {
			if _, err := segmentRef(d, rx, g.SymLen(), off); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSegmentsBatch is the sliding-DFT batch path for the same set of
// windows, reusing the destination buffers.
func BenchmarkSegmentsBatch(b *testing.B) {
	g, offs, rx := benchGridAndPlan(b)
	d := MustDemodulator(g)
	var dst [][]complex128
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = d.Segments(rx, g.SymLen(), offs, dst)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// TestSegmentsOnMatchesSegments pins the sparse-bin batch against the full
// batch at the selected bins (identical arithmetic → identical values),
// and against direct per-window FFTs.
func TestSegmentsOnMatchesSegments(t *testing.T) {
	g := WideGrid(64, 16, 4, 64)
	d1 := MustDemodulator(g)
	d2 := MustDemodulator(g)
	rx := testStream(7, 4*g.SymLen())
	offs, err := SegmentPlan(g.CP, 4, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	var sel []int
	for sc := -26; sc <= 26; sc++ {
		if sc != 0 {
			sel = append(sel, g.Bin(sc))
		}
	}
	full, err := d1.Segments(rx, g.SymLen(), offs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := d2.SegmentsOn(rx, g.SymLen(), offs, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range offs {
		for _, k := range sel {
			if sparse[i][k] != full[i][k] {
				t.Fatalf("window %d bin %d: sparse %v != full %v", i, k, sparse[i][k], full[i][k])
			}
		}
	}
	// Seed window must be complete even in sparse mode.
	if dsp.MaxAbsDiff(sparse[0], full[0]) != 0 {
		t.Fatal("sparse seed window is not complete")
	}
	if _, err := d2.SegmentsOn(rx, 0, offs, []int{-1}, nil); err == nil {
		t.Fatal("negative bin selection accepted")
	}
	if _, err := d2.SegmentsOn(rx, 0, offs, nil, nil); err == nil {
		t.Fatal("nil selection accepted")
	}
}
