package ofdm

import (
	"math"
	"sync"
)

// IEEE 802.11a/g §18.3.3 training sequences and §18.3.5.10 pilots,
// expressed on signed subcarrier indices −26 … +26.

// ltfSeq holds L_{-26..26} (53 values including DC = 0).
var ltfSeq = []float64{
	1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
	0,
	1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1,
}

// stfSeq holds S_{-26..26}/√(13/6) as ±(1+j) markers; zero elsewhere.
var stfSeq = map[int]complex128{
	-24: 1 + 1i, -20: -1 - 1i, -16: 1 + 1i, -12: -1 - 1i, -8: -1 - 1i, -4: 1 + 1i,
	4: -1 - 1i, 8: -1 - 1i, 12: 1 + 1i, 16: 1 + 1i, 20: 1 + 1i, 24: 1 + 1i,
}

// LTFValues returns the long training symbol's subcarrier map
// (±1 on the 52 used subcarriers).
func LTFValues() map[int]complex128 {
	out := make(map[int]complex128, 52)
	for i, v := range ltfSeq {
		sc := i - 26
		if v != 0 {
			out[sc] = complex(v, 0)
		}
	}
	return out
}

// LTFValue returns the known LTF value at subcarrier sc (zero if unused).
func LTFValue(sc int) complex128 {
	i := sc + 26
	if i < 0 || i >= len(ltfSeq) {
		return 0
	}
	return complex(ltfSeq[i], 0)
}

// STFValues returns the short training symbol's subcarrier map, including
// the √(13/6) power normalisation.
func STFValues() map[int]complex128 {
	k := complex(math.Sqrt(13.0/6.0), 0)
	out := make(map[int]complex128, len(stfSeq))
	for sc, v := range stfSeq {
		out[sc] = k * v
	}
	return out
}

// dataSCs is the shared DataSubcarriers slice, built once.
var dataSCs = func() []int {
	out := make([]int, 0, 48)
	for sc := -26; sc <= 26; sc++ {
		switch sc {
		case 0, -21, -7, 7, 21:
			continue
		}
		out = append(out, sc)
	}
	return out
}()

// pilotSCs is the shared PilotSubcarriers slice.
var pilotSCs = []int{-21, -7, 7, 21}

// DataSubcarriers lists the 48 data-bearing subcarriers of 802.11a/g in
// the order the standard assigns coded bits to them. The returned slice is
// shared and must not be modified.
func DataSubcarriers() []int { return dataSCs }

// PilotSubcarriers lists the four pilot subcarriers. The returned slice is
// shared and must not be modified.
func PilotSubcarriers() []int { return pilotSCs }

// pilotBase holds the per-subcarrier pilot values before polarity.
var pilotBase = map[int]complex128{-21: 1, -7: 1, 7: 1, 21: -1}

// pilotPolarity is the 127-element polarity sequence p₀…p₁₂₆ of
// §18.3.5.10; the SIGNAL symbol uses p₀ and data symbol n uses p₍n₊₁ mod 127₎.
var pilotPolarity = []int8{
	1, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1, -1, 1, 1, -1, 1,
	-1, -1, 1, 1, -1, 1, 1, -1, 1, 1, 1, 1, 1, 1, -1, 1,
	1, 1, -1, 1, 1, -1, -1, 1, 1, 1, -1, 1, -1, -1, -1, 1,
	-1, 1, -1, -1, 1, -1, -1, 1, 1, 1, 1, 1, -1, -1, 1, 1,
	-1, -1, 1, -1, 1, -1, 1, 1, -1, -1, -1, 1, 1, -1, -1, -1,
	-1, 1, -1, -1, 1, -1, 1, 1, 1, 1, -1, 1, -1, 1, -1, 1,
	-1, -1, -1, -1, -1, 1, -1, 1, 1, -1, 1, -1, 1, 1, 1, -1,
	-1, 1, -1, -1, -1, 1, 1, 1, -1, -1, -1, -1, -1, -1, -1,
}

// PilotPolarity returns p_n for symbol counter n (n = 0 is the SIGNAL
// symbol; data symbol k uses n = k+1).
func PilotPolarity(n int) float64 {
	return float64(pilotPolarity[n%len(pilotPolarity)])
}

// PilotValues returns the four pilot subcarrier values for symbol counter n.
func PilotValues(n int) map[int]complex128 {
	pol := complex(PilotPolarity(n), 0)
	out := make(map[int]complex128, 4)
	for sc, v := range pilotBase {
		out[sc] = v * pol
	}
	return out
}

// PilotValue returns the pilot value at subcarrier sc for symbol counter n
// without building a map; sc must be one of PilotSubcarriers. This is the
// allocation-free form receivers and transmitters use per symbol.
func PilotValue(n, sc int) complex128 {
	base := complex128(1)
	if sc == 21 {
		base = -1
	}
	return base * complex(PilotPolarity(n), 0)
}

// preambleCache holds the synthesised preamble waveform per grid: the
// training fields are fixed by the standard, so transmitters built per
// packet reuse one copy.
var preambleCache sync.Map // Grid -> []complex128

// Preamble returns the 802.11a/g PLCP preamble (short training field
// followed by long training field) on the modulator's grid. On a native
// 64-point grid the result is exactly 320 samples (16 µs); on a q×
// oversampled grid it is 320·q samples covering the same 16 µs.
// The waveform is cached per grid; a fresh copy is returned each call.
func Preamble(m *Modulator) []complex128 {
	if v, ok := preambleCache.Load(m.Grid()); ok {
		cached := v.([]complex128)
		out := make([]complex128, len(cached))
		copy(out, cached)
		return out
	}
	p := synthesisePreamble(m)
	cached := make([]complex128, len(p))
	copy(cached, p)
	preambleCache.Store(m.Grid(), cached)
	return p
}

func synthesisePreamble(m *Modulator) []complex128 {
	g := m.Grid()
	n := g.NFFT

	// Short training field: the STF occupies every 4th subcarrier, so its
	// IFFT is periodic with period N/4; the field lasts 2.5·N samples.
	stfBody := m.Symbol(STFValues())[g.CP:] // one N-sample period set
	stf := make([]complex128, n*5/2)
	for i := range stf {
		stf[i] = stfBody[i%n]
	}

	// Long training field: double-length guard interval (N/2 samples,
	// = 2×CP at the standard CP=N/4... the standard specifies GI2 = 1.6 µs
	// = N/2 samples at 20 MHz) followed by two full periods of the LTF.
	ltfBody := m.Symbol(LTFValues())[g.CP:]
	ltf := make([]complex128, n/2+2*n)
	copy(ltf, ltfBody[n-n/2:])
	copy(ltf[n/2:], ltfBody)
	copy(ltf[n/2+n:], ltfBody)

	return append(stf, ltf...)
}

// PreambleLen returns the preamble length in samples for a grid.
func PreambleLen(g Grid) int { return g.NFFT*5/2 + g.NFFT/2 + 2*g.NFFT }

// LTFSymbolStarts returns the offsets (relative to the preamble start) at
// which the two LTF repetitions begin, each preceded by the usable guard:
// these are the "preamble OFDM symbols" whose CP region CPRecycle mines for
// interference statistics. Each returned start is the beginning of an
// implicit CP of length g.CP before the LTF body.
func LTFSymbolStarts(g Grid) [2]int {
	n := g.NFFT
	stfLen := n * 5 / 2
	gi2 := n / 2
	// First LTF body begins at stfLen+gi2; treat the last g.CP samples of
	// the guard before each body as that symbol's cyclic prefix. For the
	// second body, the first body acts as its cyclic extension (the LTF is
	// periodic), so its CP region is the tail of body 1.
	return [2]int{stfLen + gi2 - g.CP, stfLen + gi2 + n - g.CP}
}
