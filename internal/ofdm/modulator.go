package ofdm

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/dsp"
)

// Modulator synthesises cyclic-prefixed OFDM symbols on a Grid. It caches
// the FFT plan for the grid size. Not safe for concurrent use.
type Modulator struct {
	grid Grid
	plan *dsp.FFTPlan
	freq []complex128 // scratch frequency-domain buffer
	body []complex128 // scratch time-domain buffer for SymbolInto
}

// NewModulator returns a modulator for the grid. The FFT plan comes from
// the process-wide cache, so constructing modulators per packet is cheap.
func NewModulator(g Grid) (*Modulator, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	p, err := dsp.PlanFor(g.NFFT)
	if err != nil {
		return nil, err
	}
	return &Modulator{
		grid: g,
		plan: p,
		freq: make([]complex128, g.NFFT),
		body: make([]complex128, g.NFFT),
	}, nil
}

// MustModulator is NewModulator but panics on error.
func MustModulator(g Grid) *Modulator {
	m, err := NewModulator(g)
	if err != nil {
		panic(err)
	}
	return m
}

// Grid returns the modulator's grid.
func (m *Modulator) Grid() Grid { return m.grid }

// Symbol synthesises one OFDM symbol with cyclic prefix from a map of
// signed subcarrier index to complex value. The output has length SymLen
// and unit average power per occupied subcarrier scaled so the time-domain
// signal has average power len(values)/NFFT × gain²; use GainForUnitPower
// to normalise.
func (m *Modulator) Symbol(values map[int]complex128) []complex128 {
	for i := range m.freq {
		m.freq[i] = 0
	}
	for sc, v := range values {
		m.freq[m.grid.Bin(sc)] = v
	}
	return m.timeSymbol()
}

// SymbolFromBins synthesises one OFDM symbol directly from a full
// frequency-domain vector of length NFFT (bin order, not subcarrier order).
func (m *Modulator) SymbolFromBins(bins []complex128) []complex128 {
	if len(bins) != m.grid.NFFT {
		panic(fmt.Sprintf("ofdm: SymbolFromBins got %d bins, want %d", len(bins), m.grid.NFFT))
	}
	copy(m.freq, bins)
	return m.timeSymbol()
}

func (m *Modulator) timeSymbol() []complex128 {
	out := make([]complex128, m.grid.SymLen())
	m.timeSymbolInto(out)
	return out
}

// timeSymbolInto synthesises the symbol for the current m.freq contents
// into out (length SymLen), without allocating.
func (m *Modulator) timeSymbolInto(out []complex128) {
	n := m.grid.NFFT
	body := m.body
	copy(body, m.freq)
	m.plan.Inverse(body)
	// The IFFT's 1/N scaling makes occupied-bin amplitudes tiny in the time
	// domain; scale by N so that a single occupied unit bin produces a unit
	// amplitude complex exponential, keeping powers comparable across grid
	// sizes (an oversampled embedding then has identical sample power).
	dsp.Scale(body, float64(n))
	copy(out, body[n-m.grid.CP:])
	copy(out[m.grid.CP:], body)
}

// SymbolFromBinsInto synthesises one OFDM symbol from a full
// frequency-domain vector directly into out, which must have length
// SymLen. It is the allocation-free form of SymbolFromBins, used by the
// transmitter's per-symbol hot path.
func (m *Modulator) SymbolFromBinsInto(out, bins []complex128) {
	if len(bins) != m.grid.NFFT {
		panic(fmt.Sprintf("ofdm: SymbolFromBinsInto got %d bins, want %d", len(bins), m.grid.NFFT))
	}
	if len(out) != m.grid.SymLen() {
		panic(fmt.Sprintf("ofdm: SymbolFromBinsInto got %d output samples, want %d", len(out), m.grid.SymLen()))
	}
	copy(m.freq, bins)
	m.timeSymbolInto(out)
}

// GainForUnitPower returns the gain that makes a stream of symbols with
// nOccupied unit-power subcarriers have unit average time-domain power.
func (m *Modulator) GainForUnitPower(nOccupied int) float64 {
	if nOccupied <= 0 {
		return 0
	}
	// With the N scaling above, E|x|² = nOccupied.
	return 1 / math.Sqrt(float64(nOccupied))
}

// Demodulator computes FFT windows over a received stream on a Grid,
// including the multi-segment windows CPRecycle uses. The batch
// SegmentsPlanar/SegmentsOnPlanar methods compute all P windows of a
// symbol with one seed FFT plus incremental sliding-DFT updates — running
// entirely on planar (split re/im) buffers, with per-slide twiddle
// schedules (dsp.SlideTab) and cached Eq. 2 phase-ramp tables — and the
// interleaved Segments/SegmentsOn forms are thin converting wrappers over
// the same planar core. Not safe for concurrent use.
type Demodulator struct {
	grid   Grid
	plan   *dsp.FFTPlan
	sdft   *dsp.SlidingDFT
	diffs  dsp.Planar        // scaled sample-difference scratch for slides
	rampsP map[int][]float64 // Eq. 2 ramp tables as (re, im) float pairs
	iw     []dsp.Planar      // planar scratch backing the interleaved wrappers

	// Memoised twiddle schedules for the current (offsets, sel) pair:
	// receivers advance the same segment plan every symbol, so the
	// per-slide tables resolve through the process-wide cache once per
	// plan change instead of once per slide.
	tabOffsets []int
	tabSel     []int
	tabSeq     []*dsp.SlideTab // tabSeq[i-1] serves the slide to offsets[i]
}

// NewDemodulator returns a demodulator for the grid. The FFT plan comes
// from the process-wide cache, so constructing demodulators per frame is
// cheap.
func NewDemodulator(g Grid) (*Demodulator, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	p, err := dsp.PlanFor(g.NFFT)
	if err != nil {
		return nil, err
	}
	sd, err := dsp.SlidingFor(g.NFFT)
	if err != nil {
		return nil, err
	}
	return &Demodulator{
		grid: g,
		plan: p,
		sdft: sd,
	}, nil
}

// MustDemodulator is NewDemodulator but panics on error.
func MustDemodulator(g Grid) *Demodulator {
	d, err := NewDemodulator(g)
	if err != nil {
		panic(err)
	}
	return d
}

// Grid returns the demodulator's grid.
func (d *Demodulator) Grid() Grid { return d.grid }

// WindowAt FFTs the NFFT samples of rx starting at sample index start and
// returns a fresh frequency-domain vector (bin order). The 1/N scaling
// mirrors the modulator's N scaling so a loopback returns the original
// subcarrier values.
func (d *Demodulator) WindowAt(rx []complex128, start int) ([]complex128, error) {
	out := make([]complex128, d.grid.NFFT)
	if err := d.WindowInto(out, rx, start); err != nil {
		return nil, err
	}
	return out, nil
}

// WindowInto is WindowAt into a caller-provided buffer of length NFFT,
// avoiding the allocation.
func (d *Demodulator) WindowInto(dst, rx []complex128, start int) error {
	n := d.grid.NFFT
	if len(dst) != n {
		return fmt.Errorf("ofdm: WindowInto dst length %d, want %d", len(dst), n)
	}
	if start < 0 || start+n > len(rx) {
		return fmt.Errorf("ofdm: window [%d,%d) outside rx of %d samples", start, start+n, len(rx))
	}
	copy(dst, rx[start:start+n])
	d.plan.Forward(dst)
	dsp.Scale(dst, 1/float64(n))
	return nil
}

// Standard demodulates the standard receiver's window for the OFDM symbol
// whose cyclic prefix starts at symStart: the window that skips the entire
// CP (the paper's "16th segment").
func (d *Demodulator) Standard(rx []complex128, symStart int) ([]complex128, error) {
	return d.WindowAt(rx, symStart+d.grid.CP)
}

// Segments demodulates the phase-corrected FFT windows for every CP offset
// in offsets (strictly increasing, each in [0, CP]) of the symbol whose CP
// starts at symStart — the paper's P segment windows — using one seed FFT
// at the earliest offset plus an O(N·stride) sliding-DFT update per
// further window, instead of P independent O(N log N) transforms.
//
// The batch runs on the planar core (SegmentsPlanar) and interleaves the
// results into dst, whose slices are reused when they have the right
// length and allocated otherwise; the (possibly grown) slice of windows is
// returned. Each window matches the retired per-window Segment's output:
// 1/N scaled and Eq. 2 phase-corrected, in bin order. Passing dst from a
// previous call makes the batch allocation-free.
func (d *Demodulator) Segments(rx []complex128, symStart int, offsets []int, dst [][]complex128) ([][]complex128, error) {
	var err error
	d.iw, err = d.segmentsPlanar(rx, symStart, offsets, nil, d.iw)
	if err != nil {
		return nil, err
	}
	dst = growWindows(dst, len(offsets), d.grid.NFFT)
	for i := range offsets {
		dsp.Interleave(dst[i], d.iw[i])
	}
	return dst, nil
}

// SegmentsOn is Segments restricted to a fixed set of FFT bins: the first
// (seed) window is always complete, but the slid windows are only updated
// at the listed bins — in arithmetic identical to Segments — and hold
// stale values elsewhere. Receivers that consume a fixed subcarrier set
// (e.g. the 52 used 802.11 subcarriers out of a 256-bin composite grid)
// skip most of the per-slide work this way.
func (d *Demodulator) SegmentsOn(rx []complex128, symStart int, offsets, sel []int, dst [][]complex128) ([][]complex128, error) {
	var err error
	d.iw, err = d.SegmentsOnPlanar(rx, symStart, offsets, sel, d.iw)
	if err != nil {
		return nil, err
	}
	dst = growWindows(dst, len(offsets), d.grid.NFFT)
	dsp.Interleave(dst[0], d.iw[0])
	for i := 1; i < len(offsets); i++ {
		out, w := dst[i], d.iw[i]
		for _, k := range sel {
			out[k] = complex(w.Re[k], w.Im[k])
		}
	}
	return dst, nil
}

// SegmentsPlanar is the planar-native form of Segments: the seed FFT, the
// Eq. 2 ramp and every sliding-DFT update run on split re/im planes, and
// the windows are returned as planar buffers (reused from dst when
// correctly sized). Values are identical to Segments — the planar kernels
// mirror the interleaved arithmetic operation for operation.
func (d *Demodulator) SegmentsPlanar(rx []complex128, symStart int, offsets []int, dst []dsp.Planar) ([]dsp.Planar, error) {
	return d.segmentsPlanar(rx, symStart, offsets, nil, dst)
}

// SegmentsOnPlanar is SegmentsPlanar restricted to the listed FFT bins:
// the seed window is complete, slid windows are valid at the selected bins
// only — unselected bins hold whatever the reused buffer previously held
// (the interleaved SegmentsOn wrapper shares this contract) — and the
// batch therefore touches just len(sel) bins per slide. Receivers must
// read slid windows only at selected bins.
func (d *Demodulator) SegmentsOnPlanar(rx []complex128, symStart int, offsets, sel []int, dst []dsp.Planar) ([]dsp.Planar, error) {
	if sel == nil {
		return nil, fmt.Errorf("ofdm: SegmentsOn needs a bin selection")
	}
	for _, k := range sel {
		if k < 0 || k >= d.grid.NFFT {
			return nil, fmt.Errorf("ofdm: selected bin %d outside [0,%d)", k, d.grid.NFFT)
		}
	}
	return d.segmentsPlanar(rx, symStart, offsets, sel, dst)
}

// growWindows sizes a reusable [][]complex128 window set.
func growWindows(dst [][]complex128, count, n int) [][]complex128 {
	if cap(dst) >= count {
		dst = dst[:count] // window buffers beyond the old length are reused below
	} else {
		grown := make([][]complex128, count)
		copy(grown, dst[:cap(dst)])
		dst = grown
	}
	for i := range dst {
		if len(dst[i]) != n {
			dst[i] = make([]complex128, n)
		}
	}
	return dst
}

// slideTabs returns the memoised per-slide twiddle schedules for
// (offsets, sel), resolving them through the process-wide cache only when
// the plan or selection changed since the last batch.
func (d *Demodulator) slideTabs(offsets, sel []int) ([]*dsp.SlideTab, error) {
	if slices.Equal(d.tabOffsets, offsets) && slices.Equal(d.tabSel, sel) {
		return d.tabSeq, nil
	}
	// Invalidate the memo key before touching tabSeq so a failed rebuild
	// can never be served to a later call under the previous key.
	d.tabOffsets = d.tabOffsets[:0]
	d.tabSel = d.tabSel[:0]
	d.tabSeq = d.tabSeq[:0]
	for i := 1; i < len(offsets); i++ {
		tab, err := d.sdft.SlideTabFor(d.grid.CP-offsets[i-1], offsets[i]-offsets[i-1], sel)
		if err != nil {
			return nil, err
		}
		d.tabSeq = append(d.tabSeq, tab)
	}
	d.tabOffsets = append(d.tabOffsets, offsets...)
	d.tabSel = append(d.tabSel, sel...)
	return d.tabSeq, nil
}

func (d *Demodulator) segmentsPlanar(rx []complex128, symStart int, offsets, sel []int, dst []dsp.Planar) ([]dsp.Planar, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("ofdm: Segments needs at least one offset")
	}
	n := d.grid.NFFT
	prev := -1
	for _, o := range offsets {
		if o < 0 || o > d.grid.CP {
			return nil, fmt.Errorf("ofdm: cpOffset %d outside [0,%d]", o, d.grid.CP)
		}
		if o <= prev {
			return nil, fmt.Errorf("ofdm: Segments offsets must be strictly increasing")
		}
		prev = o
	}
	first, last := symStart+offsets[0], symStart+offsets[len(offsets)-1]
	if first < 0 || last+n > len(rx) {
		return nil, fmt.Errorf("ofdm: windows [%d,%d) outside rx of %d samples", first, last+n, len(rx))
	}

	var tabs []*dsp.SlideTab
	if sel != nil && len(offsets) > 1 {
		var err error
		if tabs, err = d.slideTabs(offsets, sel); err != nil {
			return nil, err
		}
	}

	if cap(dst) >= len(offsets) {
		dst = dst[:len(offsets)] // window buffers beyond the old length are reused below
	} else {
		grown := make([]dsp.Planar, len(offsets))
		copy(grown, dst[:cap(dst)])
		dst = grown
	}
	for i := range dst {
		if dst[i].Len() != n {
			dst[i] = dsp.NewPlanar(n)
		}
	}

	// Seed: full transform of the earliest window, scaled and
	// phase-corrected exactly like the retired per-window path
	// (bit-identical output).
	seed := dst[0]
	dsp.Deinterleave(seed, rx[first:first+n])
	d.plan.ForwardPlanar(seed)
	seed.Scale(1 / float64(n))
	d.correctSegmentPhasePlanar(seed, d.grid.CP-offsets[0])

	// Each further window advances the previous one in the phase-corrected
	// domain, where the window shift and the ramp slope decrement cancel:
	// m scaled multiply-adds per bin and nothing else. With a selection the
	// update runs off the precomputed twiddle schedule, fused with the
	// inter-window copy; without one it is the full planar rotated slide.
	scale := 1 / float64(n)
	for i := 1; i < len(offsets); i++ {
		m := offsets[i] - offsets[i-1]
		at := symStart + offsets[i-1]
		if d.diffs.Len() < m {
			d.diffs = dsp.NewPlanar(m)
		}
		diffs := dsp.Planar{Re: d.diffs.Re[:m], Im: d.diffs.Im[:m]}
		for j := 0; j < m; j++ {
			in, out := rx[at+n+j], rx[at+j]
			diffs.Re[j] = (real(in) - real(out)) * scale
			diffs.Im[j] = (imag(in) - imag(out)) * scale
		}
		if sel != nil {
			d.sdft.SlideRotatedTab(dst[i], dst[i-1], diffs, tabs[i-1])
		} else {
			dsp.CopyPlanar(dst[i], dst[i-1])
			d.sdft.SlideRotatedPlanar(dst[i], diffs, d.grid.CP-offsets[i-1])
		}
	}
	return dst, nil
}

// rampKey identifies a cached phase-ramp table.
type rampKey struct{ n, delta int }

// rampCache holds the Eq. 2 phase-ramp tables process-wide: the tables
// depend only on (NFFT, delta), and receivers reuse the same handful of
// deltas for every symbol of every packet.
var rampCache sync.Map // rampKey -> []complex128

// rampPairedCache mirrors rampCache for the planar form of the tables:
// the same values as (re, im) float pairs, shared process-wide so
// per-frame (and per-fork) demodulators never rebuild them.
var rampPairedCache sync.Map // rampKey -> []float64

// rampPairedFor returns the cached (re, im)-paired copy of rampFor(n, delta).
func rampPairedFor(n, delta int) []float64 {
	key := rampKey{n, delta}
	if v, ok := rampPairedCache.Load(key); ok {
		return v.([]float64)
	}
	src := rampFor(n, delta)
	t := make([]float64, 2*len(src))
	for k, r := range src {
		t[2*k], t[2*k+1] = real(r), imag(r)
	}
	v, _ := rampPairedCache.LoadOrStore(key, t)
	return v.([]float64)
}

// rampFor returns the cached table e^{+i 2π k delta / N} for k in [0, N).
// Entries are computed exactly as CorrectSegmentPhase does, so applying
// the table is bit-identical to the per-call Sincos loop.
func rampFor(n, delta int) []complex128 {
	key := rampKey{n, delta}
	if v, ok := rampCache.Load(key); ok {
		return v.([]complex128)
	}
	w := 2 * math.Pi * float64(delta) / float64(n)
	t := make([]complex128, n)
	for k := range t {
		s, c := math.Sincos(w * float64(k))
		t[k] = complex(c, s)
	}
	v, _ := rampCache.LoadOrStore(key, t)
	return v.([]complex128)
}

// correctSegmentPhasePlanar applies the cached Eq. 2 ramp for delta to a
// planar window, with the complex multiply expanded to the same float
// operations as the interleaved CorrectSegmentPhase.
func (d *Demodulator) correctSegmentPhasePlanar(bins dsp.Planar, delta int) {
	if delta == 0 || bins.Len() == 0 {
		return
	}
	t := d.rampsP[delta]
	if t == nil {
		t = rampPairedFor(d.grid.NFFT, delta)
		if d.rampsP == nil {
			d.rampsP = make(map[int][]float64)
		}
		d.rampsP[delta] = t
	}
	re, im := bins.Re, bins.Im
	for k := range re {
		tr, ti := t[2*k], t[2*k+1]
		br, bi := re[k], im[k]
		re[k] = br*tr - bi*ti
		im[k] = br*ti + bi*tr
	}
}

// CorrectSegmentPhase removes the phase ramp caused by starting the FFT
// window delta samples early (relative to the standard CP-skipping window):
// bin k is multiplied by e^{+i 2π k delta / N}. This is Eq. 2 of the paper.
func CorrectSegmentPhase(bins []complex128, delta int) {
	if delta == 0 || len(bins) == 0 {
		return
	}
	for k, r := range rampFor(len(bins), delta) {
		bins[k] *= r
	}
}

// SegmentPlan enumerates the FFT segment start offsets used by a CPRecycle
// receiver: numSegments windows ending at the standard position, spaced
// stride samples apart, all within the ISI-free region [minOffset, CP].
// Offsets are returned in increasing order; the last is always CP (the
// standard window), mirroring the paper where "the scheme gracefully
// degrades to a standard OFDM receiver with one FFT segment".
func SegmentPlan(cp, stride, numSegments, minOffset int) ([]int, error) {
	if stride <= 0 {
		return nil, fmt.Errorf("ofdm: stride %d must be positive", stride)
	}
	if numSegments <= 0 {
		return nil, fmt.Errorf("ofdm: numSegments %d must be positive", numSegments)
	}
	if minOffset < 0 || minOffset > cp {
		return nil, fmt.Errorf("ofdm: minOffset %d outside [0,%d]", minOffset, cp)
	}
	var offs []int
	for i := 0; i < numSegments; i++ {
		o := cp - i*stride
		if o < minOffset {
			break
		}
		offs = append(offs, o)
	}
	// reverse to increasing order
	for i, j := 0, len(offs)-1; i < j; i, j = i+1, j-1 {
		offs[i], offs[j] = offs[j], offs[i]
	}
	if len(offs) == 0 {
		return nil, fmt.Errorf("ofdm: no segments fit (cp=%d stride=%d min=%d)", cp, stride, minOffset)
	}
	return offs, nil
}
