package ofdm

import (
	"fmt"
	"math"

	"repro/internal/dsp"
)

// Modulator synthesises cyclic-prefixed OFDM symbols on a Grid. It caches
// the FFT plan for the grid size. Not safe for concurrent use.
type Modulator struct {
	grid Grid
	plan *dsp.FFTPlan
	freq []complex128 // scratch frequency-domain buffer
}

// NewModulator returns a modulator for the grid.
func NewModulator(g Grid) (*Modulator, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	p, err := dsp.NewFFTPlan(g.NFFT)
	if err != nil {
		return nil, err
	}
	return &Modulator{grid: g, plan: p, freq: make([]complex128, g.NFFT)}, nil
}

// MustModulator is NewModulator but panics on error.
func MustModulator(g Grid) *Modulator {
	m, err := NewModulator(g)
	if err != nil {
		panic(err)
	}
	return m
}

// Grid returns the modulator's grid.
func (m *Modulator) Grid() Grid { return m.grid }

// Symbol synthesises one OFDM symbol with cyclic prefix from a map of
// signed subcarrier index to complex value. The output has length SymLen
// and unit average power per occupied subcarrier scaled so the time-domain
// signal has average power len(values)/NFFT × gain²; use GainForUnitPower
// to normalise.
func (m *Modulator) Symbol(values map[int]complex128) []complex128 {
	for i := range m.freq {
		m.freq[i] = 0
	}
	for sc, v := range values {
		m.freq[m.grid.Bin(sc)] = v
	}
	return m.timeSymbol()
}

// SymbolFromBins synthesises one OFDM symbol directly from a full
// frequency-domain vector of length NFFT (bin order, not subcarrier order).
func (m *Modulator) SymbolFromBins(bins []complex128) []complex128 {
	if len(bins) != m.grid.NFFT {
		panic(fmt.Sprintf("ofdm: SymbolFromBins got %d bins, want %d", len(bins), m.grid.NFFT))
	}
	copy(m.freq, bins)
	return m.timeSymbol()
}

func (m *Modulator) timeSymbol() []complex128 {
	n := m.grid.NFFT
	body := make([]complex128, n)
	copy(body, m.freq)
	m.plan.Inverse(body)
	// The IFFT's 1/N scaling makes occupied-bin amplitudes tiny in the time
	// domain; scale by N so that a single occupied unit bin produces a unit
	// amplitude complex exponential, keeping powers comparable across grid
	// sizes (an oversampled embedding then has identical sample power).
	dsp.Scale(body, float64(n))
	out := make([]complex128, m.grid.SymLen())
	copy(out, body[n-m.grid.CP:])
	copy(out[m.grid.CP:], body)
	return out
}

// GainForUnitPower returns the gain that makes a stream of symbols with
// nOccupied unit-power subcarriers have unit average time-domain power.
func (m *Modulator) GainForUnitPower(nOccupied int) float64 {
	if nOccupied <= 0 {
		return 0
	}
	// With the N scaling above, E|x|² = nOccupied.
	return 1 / math.Sqrt(float64(nOccupied))
}

// Demodulator computes FFT windows over a received stream on a Grid,
// including the multi-segment windows CPRecycle uses. Not safe for
// concurrent use.
type Demodulator struct {
	grid Grid
	plan *dsp.FFTPlan
	buf  []complex128
}

// NewDemodulator returns a demodulator for the grid.
func NewDemodulator(g Grid) (*Demodulator, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	p, err := dsp.NewFFTPlan(g.NFFT)
	if err != nil {
		return nil, err
	}
	return &Demodulator{grid: g, plan: p, buf: make([]complex128, g.NFFT)}, nil
}

// MustDemodulator is NewDemodulator but panics on error.
func MustDemodulator(g Grid) *Demodulator {
	d, err := NewDemodulator(g)
	if err != nil {
		panic(err)
	}
	return d
}

// Grid returns the demodulator's grid.
func (d *Demodulator) Grid() Grid { return d.grid }

// WindowAt FFTs the NFFT samples of rx starting at sample index start and
// returns a fresh frequency-domain vector (bin order). The 1/N scaling
// mirrors the modulator's N scaling so a loopback returns the original
// subcarrier values.
func (d *Demodulator) WindowAt(rx []complex128, start int) ([]complex128, error) {
	n := d.grid.NFFT
	if start < 0 || start+n > len(rx) {
		return nil, fmt.Errorf("ofdm: window [%d,%d) outside rx of %d samples", start, start+n, len(rx))
	}
	out := make([]complex128, n)
	copy(out, rx[start:start+n])
	d.plan.Forward(out)
	dsp.Scale(out, 1/float64(n))
	return out, nil
}

// Standard demodulates the standard receiver's window for the OFDM symbol
// whose cyclic prefix starts at symStart: the window that skips the entire
// CP (the paper's "16th segment").
func (d *Demodulator) Standard(rx []complex128, symStart int) ([]complex128, error) {
	return d.WindowAt(rx, symStart+d.grid.CP)
}

// Segment demodulates the FFT window starting at cpOffset samples into the
// cyclic prefix (cpOffset ∈ [0, CP]) of the symbol whose CP starts at
// symStart, and corrects the deterministic phase ramp of Proposition 3.1 so
// the signal component equals the standard window's. cpOffset = CP yields
// the standard window unchanged.
func (d *Demodulator) Segment(rx []complex128, symStart, cpOffset int) ([]complex128, error) {
	if cpOffset < 0 || cpOffset > d.grid.CP {
		return nil, fmt.Errorf("ofdm: cpOffset %d outside [0,%d]", cpOffset, d.grid.CP)
	}
	out, err := d.WindowAt(rx, symStart+cpOffset)
	if err != nil {
		return nil, err
	}
	CorrectSegmentPhase(out, d.grid.CP-cpOffset)
	return out, nil
}

// CorrectSegmentPhase removes the phase ramp caused by starting the FFT
// window delta samples early (relative to the standard CP-skipping window):
// bin k is multiplied by e^{+i 2π k delta / N}. This is Eq. 2 of the paper.
func CorrectSegmentPhase(bins []complex128, delta int) {
	n := len(bins)
	if delta == 0 || n == 0 {
		return
	}
	w := 2 * math.Pi * float64(delta) / float64(n)
	for k := range bins {
		s, c := math.Sincos(w * float64(k))
		bins[k] *= complex(c, s)
	}
}

// SegmentPlan enumerates the FFT segment start offsets used by a CPRecycle
// receiver: numSegments windows ending at the standard position, spaced
// stride samples apart, all within the ISI-free region [minOffset, CP].
// Offsets are returned in increasing order; the last is always CP (the
// standard window), mirroring the paper where "the scheme gracefully
// degrades to a standard OFDM receiver with one FFT segment".
func SegmentPlan(cp, stride, numSegments, minOffset int) ([]int, error) {
	if stride <= 0 {
		return nil, fmt.Errorf("ofdm: stride %d must be positive", stride)
	}
	if numSegments <= 0 {
		return nil, fmt.Errorf("ofdm: numSegments %d must be positive", numSegments)
	}
	if minOffset < 0 || minOffset > cp {
		return nil, fmt.Errorf("ofdm: minOffset %d outside [0,%d]", minOffset, cp)
	}
	var offs []int
	for i := 0; i < numSegments; i++ {
		o := cp - i*stride
		if o < minOffset {
			break
		}
		offs = append(offs, o)
	}
	// reverse to increasing order
	for i, j := 0, len(offs)-1; i < j; i, j = i+1, j-1 {
		offs[i], offs[j] = offs[j], offs[i]
	}
	if len(offs) == 0 {
		return nil, fmt.Errorf("ofdm: no segments fit (cp=%d stride=%d min=%d)", cp, stride, minOffset)
	}
	return offs, nil
}
