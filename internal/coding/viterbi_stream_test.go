package coding

import (
	"bytes"
	"math/rand"
	"testing"
)

// flatAnchoredRef reproduces the flat (full-buffer) anchored decode
// regardless of stream length, as the reference for the windowed decoder:
// best-final-state traceback above the anchor, zero-state traceback below.
func flatAnchoredRef(v *Viterbi, llrs []float64, anchorBit int) []byte {
	n := len(llrs) / 2
	dp, fm := v.forwardPass(llrs, n)
	decisions := *dp
	bits := make([]byte, n)
	state := bestState(fm)
	for t := n - 1; t >= anchorBit; t-- {
		bits[t] = byte(state >> 5)
		state = int(decisions[t*numStates+state])
	}
	traceback(decisions, bits, anchorBit, 0)
	putDecisions(dp)
	return bits
}

// flatRef is the flat terminated / best-final decode reference.
func flatRef(v *Viterbi, llrs []float64, fromBest bool) []byte {
	n := len(llrs) / 2
	dp, fm := v.forwardPass(llrs, n)
	decisions := *dp
	bits := make([]byte, n)
	state := 0
	if fromBest {
		state = bestState(fm)
	}
	traceback(decisions, bits, n, state)
	putDecisions(dp)
	return bits
}

// streamLLRs builds an LLR stream of n trellis steps: a noisy encoding of
// random bits (so survivor paths look like real decodes), with a fraction
// of erasures and sign flips.
func streamLLRs(rng *rand.Rand, n int) []float64 {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	// Ensure the tail drives the encoder toward the zero state so the
	// terminated reference is meaningful for part of the cases.
	for i := n - 6; i > 0 && i < n; i++ {
		bits[i] = 0
	}
	llrs := HardToLLR(ConvEncode(bits))
	for i := range llrs {
		switch rng.Intn(10) {
		case 0:
			llrs[i] = -llrs[i] // channel error
		case 1:
			llrs[i] = 0 // erasure
		case 2:
			llrs[i] *= rng.Float64() * 3 // soft confidence
		}
	}
	return llrs
}

// TestDecodeWindowedMatchesFlat pins the windowed decoder to the flat
// reference bit for bit, across window sizes (including ones forcing many
// merge flushes), anchor positions (interior, zero, end-adjacent) and both
// terminal-state rules. This is the exactness contract of the streaming
// traceback: the survivor-merge finalisation must never emit a bit the
// full-buffer traceback would decide differently.
func TestDecodeWindowedMatchesFlat(t *testing.T) {
	v := NewViterbi()
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{40, 700, 3000} {
		llrs := streamLLRs(rng, n)
		for _, window := range []int{1, 150, 4096} { // 1 clamps to the minimum window
			for _, anchor := range []int{0, 37, n / 2, n - 7, n} {
				if anchor > n {
					continue
				}
				var want []byte
				if anchor == n {
					want = flatRef(v, llrs, true)
				} else {
					want = flatAnchoredRef(v, llrs, anchor)
				}
				got, err := v.decodeWindowed(llrs, anchor, true, window)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("n=%d window=%d anchor=%d: windowed decode diverges from flat", n, window, anchor)
				}
			}
			// Terminated rule (traceback from state 0 at the end).
			want := flatRef(v, llrs, false)
			got, err := v.decodeWindowed(llrs, n, false, window)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("n=%d window=%d terminated: windowed decode diverges from flat", n, window)
			}
		}
	}
}

// TestDecodeWindowedAllErasures feeds a stream of pure erasures (every
// path metric tied at every step): deterministic tie-breaking must still
// merge the survivors and the output must match the flat reference.
func TestDecodeWindowedAllErasures(t *testing.T) {
	v := NewViterbi()
	n := 2000
	llrs := make([]float64, 2*n)
	got, err := v.decodeWindowed(llrs, n, false, 150)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, flatRef(v, llrs, false)) {
		t.Fatal("all-erasure windowed decode diverges from flat")
	}
}

// TestDecodeLongStreamsUseWindowAndMatch exercises the public entry points
// above the streamEngage threshold — the paths real long-PSDU decodes take
// — against the flat references, including a full encode/decode round trip.
func TestDecodeLongStreamsUseWindowAndMatch(t *testing.T) {
	v := NewViterbi()
	rng := rand.New(rand.NewSource(123))
	n := streamEngage + 517
	llrs := streamLLRs(rng, n)

	got, err := v.Decode(llrs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, flatRef(v, llrs, false)) {
		t.Fatal("long terminated Decode diverges from flat")
	}

	v.Terminated = false
	got, err = v.Decode(llrs)
	v.Terminated = true
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, flatRef(v, llrs, true)) {
		t.Fatal("long unterminated Decode diverges from flat")
	}

	anchor := n - 100
	got, err = v.DecodeAnchored(llrs, anchor)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, flatAnchoredRef(v, llrs, anchor)) {
		t.Fatal("long DecodeAnchored diverges from flat")
	}

	// Noiseless round trip through the long path: decoded bits must
	// reproduce the encoder input exactly.
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	for i := n - 6; i < n; i++ {
		bits[i] = 0 // tail back to the zero state
	}
	dec, err := v.Decode(HardToLLR(ConvEncode(bits)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, bits) {
		t.Fatal("long noiseless round trip failed")
	}
}
