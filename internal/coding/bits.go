// Package coding implements the IEEE 802.11a/g bit-level processing chain:
// scrambling, rate-1/2 K=7 convolutional coding with the standard puncturing
// patterns, a hard/soft Viterbi decoder, the two-permutation block
// interleaver, and the CRC-32 frame check sequence.
//
// Bits are represented as bytes holding 0 or 1. Octets serialise LSB-first,
// as the standard requires.
package coding

import "fmt"

// BytesToBits expands octets to bits, least-significant bit of each octet
// first (802.11 §18.3.5.2 bit ordering).
func BytesToBits(data []byte) []byte {
	out := make([]byte, 0, len(data)*8)
	for _, b := range data {
		for i := 0; i < 8; i++ {
			out = append(out, (b>>i)&1)
		}
	}
	return out
}

// BitsToBytes packs bits (LSB-first per octet) back into octets. The bit
// count must be a multiple of 8.
func BitsToBytes(bits []byte) []byte {
	if len(bits)%8 != 0 {
		panic(fmt.Sprintf("coding: BitsToBytes on %d bits (not a multiple of 8)", len(bits)))
	}
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b&1 != 0 {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// HammingDistance returns the number of positions at which a and b differ.
// The slices must be equally long.
func HammingDistance(a, b []byte) int {
	if len(a) != len(b) {
		panic("coding: HammingDistance length mismatch")
	}
	d := 0
	for i := range a {
		if a[i]&1 != b[i]&1 {
			d++
		}
	}
	return d
}

// XorBits returns a XOR b elementwise; slices must be equally long.
func XorBits(a, b []byte) []byte {
	if len(a) != len(b) {
		panic("coding: XorBits length mismatch")
	}
	out := make([]byte, len(a))
	for i := range a {
		out[i] = (a[i] ^ b[i]) & 1
	}
	return out
}

// HardToLLR converts hard bits to ±1 log-likelihood ratios (positive means
// bit 0), the representation the Viterbi decoder consumes. Erasures are not
// representable here; use Depuncture for punctured streams.
func HardToLLR(bits []byte) []float64 {
	out := make([]float64, len(bits))
	for i, b := range bits {
		if b&1 == 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}
