package coding

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
)

func TestBytesBitsRoundTrip(t *testing.T) {
	data := []byte{0x00, 0xFF, 0xA5, 0x3C}
	bits := BytesToBits(data)
	if len(bits) != 32 {
		t.Fatalf("bit count %d", len(bits))
	}
	// 0xA5 = 1010 0101, LSB first: 1 0 1 0 0 1 0 1
	want := []byte{1, 0, 1, 0, 0, 1, 0, 1}
	if !bytes.Equal(bits[16:24], want) {
		t.Fatalf("0xA5 bits = %v, want %v", bits[16:24], want)
	}
	if !bytes.Equal(BitsToBytes(bits), data) {
		t.Fatal("round trip failed")
	}
}

func TestBitsToBytesPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BitsToBytes(make([]byte, 7))
}

func TestBytesBitsProperty(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(BitsToBytes(BytesToBits(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHammingDistance(t *testing.T) {
	if d := HammingDistance([]byte{0, 1, 1, 0}, []byte{1, 1, 0, 0}); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
}

func TestScramblerKnownSequence(t *testing.T) {
	// With the all-ones state 0x7F, the 802.11 scrambler emits the 127-bit
	// repeating sequence whose first octets are (IEEE 802.11-2012 §18.3.5.5)
	// 00001110 11110010 11001001 ... reading LSB-first transmission order:
	// first 16 bits: 0 0 0 0 1 1 1 0 1 1 1 1 0 0 1 0
	s := NewScrambler(0x7F)
	got := s.Sequence(16)
	want := []byte{0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0}
	if !bytes.Equal(got, want) {
		t.Fatalf("scrambler sequence = %v, want %v", got, want)
	}
}

func TestScramblerPeriod127(t *testing.T) {
	s := NewScrambler(0x5D)
	seq := s.Sequence(254)
	if !bytes.Equal(seq[:127], seq[127:]) {
		t.Fatal("scrambler sequence is not 127-periodic")
	}
	// And it is not shorter-periodic.
	if bytes.Equal(seq[:63], seq[63:126]) {
		t.Fatal("scrambler period unexpectedly divides 63")
	}
}

func TestScramblerSelfInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := dsp.NewRand(seed)
		bits := r.Bits(200)
		orig := append([]byte{}, bits...)
		seedByte := uint8(r.Intn(127) + 1)
		NewScrambler(seedByte).Apply(bits)
		NewScrambler(seedByte).Apply(bits)
		return bytes.Equal(bits, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScramblerZeroSeedFallsBack(t *testing.T) {
	a := NewScrambler(0).Sequence(20)
	b := NewScrambler(DefaultScramblerSeed).Sequence(20)
	if !bytes.Equal(a, b) {
		t.Fatal("zero seed should fall back to default")
	}
}

func TestConvEncodeKnownVector(t *testing.T) {
	// Hand-computed from the generator polynomials for input 1 0 1 1 from
	// the zero state:
	// t=0 in=1 reg=000000: A = 1, B = 1
	// t=1 in=0 reg=100000: A = 0·1+prev... computed by definition below.
	in := []byte{1, 0, 1, 1}
	got := ConvEncode(in)
	// Compute expected by direct polynomial definition with D = delay:
	// A = d[t] ^ d[t-2] ^ d[t-3] ^ d[t-5] ^ d[t-6]
	// B = d[t] ^ d[t-1] ^ d[t-2] ^ d[t-3] ^ d[t-6]
	d := func(idx int) byte {
		if idx < 0 || idx >= len(in) {
			return 0
		}
		return in[idx]
	}
	var want []byte
	for t2 := range in {
		a := d(t2) ^ d(t2-2) ^ d(t2-3) ^ d(t2-5) ^ d(t2-6)
		b := d(t2) ^ d(t2-1) ^ d(t2-2) ^ d(t2-3) ^ d(t2-6)
		want = append(want, a, b)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ConvEncode = %v, want %v", got, want)
	}
}

func TestConvEncodeLength(t *testing.T) {
	if n := len(ConvEncode(make([]byte, 13))); n != 26 {
		t.Fatalf("encoded length %d, want 26", n)
	}
}

func TestViterbiNoiselessRoundTripProperty(t *testing.T) {
	v := NewViterbi()
	f := func(seed int64) bool {
		r := dsp.NewRand(seed)
		info := append(r.Bits(40+r.Intn(100)), make([]byte, 6)...) // tail
		coded := ConvEncode(info)
		dec, err := v.DecodeHard(coded)
		return err == nil && bytes.Equal(dec, info)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestViterbiCorrectsErrors(t *testing.T) {
	// The K=7 code has free distance 10: any ≤4-bit error pattern spread
	// out over the block must be corrected.
	v := NewViterbi()
	r := dsp.NewRand(11)
	info := append(r.Bits(120), make([]byte, 6)...)
	coded := ConvEncode(info)
	corrupt := append([]byte{}, coded...)
	for _, pos := range []int{10, 60, 130, 200} {
		corrupt[pos] ^= 1
	}
	dec, err := v.DecodeHard(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, info) {
		t.Fatal("Viterbi failed to correct 4 spread bit errors")
	}
}

func TestViterbiSoftBeatsErasures(t *testing.T) {
	// Erasures (LLR 0) carry no information; decoding must still succeed
	// when a modest fraction of positions are erased.
	v := NewViterbi()
	r := dsp.NewRand(12)
	info := append(r.Bits(100), make([]byte, 6)...)
	coded := ConvEncode(info)
	llrs := HardToLLR(coded)
	for i := 0; i < len(llrs); i += 7 {
		llrs[i] = 0
	}
	dec, err := v.Decode(llrs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, info) {
		t.Fatal("Viterbi failed with 1/7 erasures")
	}
}

func TestViterbiUnterminated(t *testing.T) {
	v := NewViterbi()
	v.Terminated = false
	r := dsp.NewRand(13)
	info := r.Bits(80) // no tail
	coded := ConvEncode(info)
	dec, err := v.DecodeHard(coded)
	if err != nil {
		t.Fatal(err)
	}
	// Allow the last few bits to be unreliable without termination.
	if !bytes.Equal(dec[:70], info[:70]) {
		t.Fatal("unterminated Viterbi corrupted early bits")
	}
}

func TestViterbiRejectsOddLLRs(t *testing.T) {
	if _, err := NewViterbi().Decode(make([]float64, 3)); err == nil {
		t.Fatal("expected error for odd LLR count")
	}
}

func TestPuncturePatterns(t *testing.T) {
	coded := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if got := Puncture(coded, Rate1_2); !bytes.Equal(got, coded) {
		t.Fatal("rate 1/2 must not puncture")
	}
	got23 := Puncture(coded, Rate2_3)
	want23 := []byte{1, 2, 3, 5, 6, 7, 9, 10, 11}
	if !bytes.Equal(got23, want23) {
		t.Fatalf("rate 2/3: %v, want %v", got23, want23)
	}
	got34 := Puncture(coded, Rate3_4)
	want34 := []byte{1, 2, 3, 6, 7, 8, 9, 12}
	if !bytes.Equal(got34, want34) {
		t.Fatalf("rate 3/4: %v, want %v", got34, want34)
	}
}

func TestPuncturedLen(t *testing.T) {
	// One 802.11 OFDM symbol at 16-QAM rate 1/2: 96 coded bits.
	if n := PuncturedLen(96, Rate1_2); n != 192 {
		t.Fatalf("1/2: %d", n)
	}
	// 54 Mbps symbol: 216 info bits → 288 coded bits at 3/4.
	if n := PuncturedLen(216, Rate3_4); n != 288 {
		t.Fatalf("3/4: %d", n)
	}
	// 2/3: 192 info bits → 288 coded.
	if n := PuncturedLen(192, Rate2_3); n != 288 {
		t.Fatalf("2/3: %d", n)
	}
}

func TestRateAccessors(t *testing.T) {
	for _, c := range []struct {
		r        CodeRate
		num, den int
		str      string
	}{{Rate1_2, 1, 2, "1/2"}, {Rate2_3, 2, 3, "2/3"}, {Rate3_4, 3, 4, "3/4"}} {
		if c.r.Num() != c.num || c.r.Den() != c.den || c.r.String() != c.str {
			t.Errorf("rate %v accessors wrong", c.r)
		}
	}
}

func TestDepunctureRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := dsp.NewRand(seed)
		for _, rate := range []CodeRate{Rate1_2, Rate2_3, Rate3_4} {
			nInfo := 12 * (1 + r.Intn(20)) // multiple of puncture periods
			coded := ConvEncode(r.Bits(nInfo))
			punct := Puncture(coded, rate)
			llrs := HardToLLR(punct)
			mother, err := Depuncture(llrs, rate, 2*nInfo)
			if err != nil {
				return false
			}
			// Non-erased positions must match the original coded bits.
			j := 0
			pat := rate.puncturePattern()
			for i, l := range mother {
				if pat[i%len(pat)] {
					wantBit := coded[i]
					gotBit := byte(0)
					if l < 0 {
						gotBit = 1
					}
					if l == 0 || gotBit != wantBit {
						return false
					}
					j++
				} else if l != 0 {
					return false
				}
			}
			if j != len(punct) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDepunctureErrors(t *testing.T) {
	if _, err := Depuncture(make([]float64, 3), Rate2_3, 8); err == nil {
		t.Fatal("expected error for short llr stream")
	}
	if _, err := Depuncture(make([]float64, 10), Rate2_3, 8); err == nil {
		t.Fatal("expected error for long llr stream")
	}
}

func TestPuncturedViterbiRoundTrip(t *testing.T) {
	v := NewViterbi()
	r := dsp.NewRand(14)
	for _, rate := range []CodeRate{Rate1_2, Rate2_3, Rate3_4} {
		nInfo := 216
		info := append(r.Bits(nInfo-6), make([]byte, 6)...)
		punct := Puncture(ConvEncode(info), rate)
		dec, err := v.DecodePunctured(HardToLLR(punct), rate, nInfo)
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if !bytes.Equal(dec, info) {
			t.Fatalf("rate %v: punctured round trip failed", rate)
		}
	}
}

func TestPuncturedViterbiCorrectsErrors(t *testing.T) {
	v := NewViterbi()
	r := dsp.NewRand(15)
	info := append(r.Bits(186), make([]byte, 6)...)
	punct := Puncture(ConvEncode(info), Rate3_4)
	punct[20] ^= 1
	punct[120] ^= 1
	dec, err := v.DecodePunctured(HardToLLR(punct), Rate3_4, 192)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, info) {
		t.Fatal("rate 3/4 failed to correct 2 spread errors")
	}
}

func TestInterleaverKnownSize(t *testing.T) {
	// 802.11 QPSK: Ncbps=96, Nbpsc=2.
	il := MustInterleaver(96, 2)
	if il.Ncbps() != 96 {
		t.Fatal("Ncbps")
	}
	// Spot check the first permutation chain: k=0 → i=0 → j=0.
	bits := make([]byte, 96)
	bits[0] = 1
	out := il.Interleave(bits)
	if out[0] != 1 {
		t.Fatal("k=0 should map to position 0")
	}
	// k=1 → i = 6·1 = 6 → j = 6 (s=1 for QPSK).
	bits = make([]byte, 96)
	bits[1] = 1
	out = il.Interleave(bits)
	if out[6] != 1 {
		t.Fatalf("k=1 should map to position 6")
	}
}

func TestInterleaverIsPermutationProperty(t *testing.T) {
	for _, cfg := range []struct{ ncbps, nbpsc int }{
		{48, 1}, {96, 2}, {192, 4}, {288, 6},
	} {
		il := MustInterleaver(cfg.ncbps, cfg.nbpsc)
		seen := make([]bool, cfg.ncbps)
		for k := 0; k < cfg.ncbps; k++ {
			p := il.perm[k]
			if p < 0 || p >= cfg.ncbps || seen[p] {
				t.Fatalf("ncbps=%d: perm not a bijection at k=%d", cfg.ncbps, k)
			}
			seen[p] = true
		}
	}
}

func TestInterleaveRoundTripProperty(t *testing.T) {
	il := MustInterleaver(288, 6)
	f := func(seed int64) bool {
		r := dsp.NewRand(seed)
		bits := r.Bits(288)
		got := il.Deinterleave(il.Interleave(bits))
		return bytes.Equal(got, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeinterleaveLLRMatchesBits(t *testing.T) {
	il := MustInterleaver(192, 4)
	r := dsp.NewRand(16)
	bits := r.Bits(192)
	inter := il.Interleave(bits)
	llrs := HardToLLR(inter)
	deLLR := il.DeinterleaveLLR(llrs)
	deBits := il.Deinterleave(inter)
	for i := range deBits {
		want := 1.0
		if deBits[i] == 1 {
			want = -1
		}
		if deLLR[i] != want {
			t.Fatalf("LLR deinterleave mismatch at %d", i)
		}
	}
}

func TestInterleaverRejectsBadNcbps(t *testing.T) {
	if _, err := NewInterleaver(50, 2); err == nil {
		t.Fatal("expected error for Ncbps not multiple of 16")
	}
	if _, err := NewInterleaver(0, 2); err == nil {
		t.Fatal("expected error for zero Ncbps")
	}
}

func TestInterleaverSpreadsAdjacentBits(t *testing.T) {
	// The whole point of the interleaver: adjacent coded bits must land on
	// non-adjacent positions (≥ Ncbps/16 apart in the first permutation).
	il := MustInterleaver(192, 4)
	for k := 0; k+1 < 192; k++ {
		d := il.perm[k+1] - il.perm[k]
		if d < 0 {
			d = -d
		}
		if d < 2 {
			t.Fatalf("adjacent bits %d,%d map %d apart", k, k+1, d)
		}
	}
}

func TestFCSRoundTrip(t *testing.T) {
	data := []byte("hello 802.11 world")
	frame := AppendFCS(data)
	if len(frame) != len(data)+4 {
		t.Fatalf("frame length %d", len(frame))
	}
	body, ok := CheckFCS(frame)
	if !ok || !bytes.Equal(body, data) {
		t.Fatal("FCS round trip failed")
	}
}

func TestFCSDetectsCorruption(t *testing.T) {
	frame := AppendFCS([]byte{1, 2, 3, 4, 5})
	for i := range frame {
		bad := append([]byte{}, frame...)
		bad[i] ^= 0x10
		if _, ok := CheckFCS(bad); ok {
			t.Fatalf("corruption at octet %d went undetected", i)
		}
	}
}

func TestFCSShortFrame(t *testing.T) {
	if _, ok := CheckFCS([]byte{1, 2, 3}); ok {
		t.Fatal("short frame must fail")
	}
}

func TestFCSProperty(t *testing.T) {
	f := func(data []byte) bool {
		body, ok := CheckFCS(AppendFCS(data))
		return ok && bytes.Equal(body, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkViterbi1000Bits(b *testing.B) {
	v := NewViterbi()
	r := dsp.NewRand(1)
	info := append(r.Bits(994), make([]byte, 6)...)
	llrs := HardToLLR(ConvEncode(info))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := v.Decode(llrs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvEncode1000Bits(b *testing.B) {
	r := dsp.NewRand(1)
	info := r.Bits(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ConvEncode(info)
	}
}
