package coding

import "math"

// The windowed decoder bounds survivor memory for long streams: instead of
// one flat decisions array of n·numStates bytes, it retains a sliding
// window of streamWindow trellis columns and finalises the prefix
// whenever the buffer fills, using the survivor-merge property — once the
// backward paths of ALL states at the current frontier coincide at some
// earlier column, every future traceback that enters through the frontier
// (terminated, best-final-state and zero-anchored alike) follows that
// common path below the merge column, so the bits it implies are final
// and their decisions can be dropped. The emitted stream is therefore
// bit-identical to the flat decoder's, not a truncation approximation
// like fixed-depth "decide after D" windowed Viterbi. In the (physically
// implausible, but constructible) event that the survivors refuse to
// merge within the window, the buffer doubles — exactness is never
// traded for the memory bound.
//
// streamWindow is ≫ the rate-1/2 K=7 code's ~5·K ≈ 35-step survivor merge
// depth, so in practice a merge is always found within a small prefix of
// the window and the amortised finalisation cost is O(numStates) per bit.
const streamWindow = 512

// streamEngage is the stream length (in trellis steps) above which Decode
// and DecodeAnchored switch to the windowed decoder: below it the flat
// pooled buffer (≤ streamEngage·numStates = 64 KiB) is cheaper than
// merge-checking; above it survivor memory stays O(streamWindow·numStates)
// regardless of PSDU length, where the flat buffer would keep growing
// (~64 B per payload bit — half a megabyte for a 4000-octet A-MPDU).
const streamEngage = 2 * streamWindow

// decodeWindowed decodes n = len(llrs)/2 steps with the sliding survivor
// window. Bits in [anchorBit, n) are traced from the best final state when
// fromBest is true and from state 0 otherwise; bits in [0, anchorBit) are
// traced from the known zero state at anchorBit (pass anchorBit = n for
// plain terminated/unterminated decoding). Output is bit-identical to the
// flat decoder with the same parameters. Survivor memory is
// O(window + (n − anchorBit)) columns: decisions above the anchor must
// stay buffered until the final state is known, so callers anchoring far
// from the end keep proportionally more.
func (v *Viterbi) decodeWindowed(llrs []float64, anchorBit int, fromBest bool, window int) ([]byte, error) {
	n := len(llrs) / 2
	const inf = math.MaxFloat64 / 4
	var metricA, metricB [numStates]float64
	metric, nextMetric := &metricA, &metricB
	for s := 1; s < numStates; s++ {
		metric[s] = inf
	}
	if window < 2*numStates {
		window = 2 * numStates
	}
	dp := getDecisions(window)
	dec := *dp
	bits := make([]byte, n)
	base := 0 // first trellis step whose decisions are still buffered
	var cost [4]float64
	for t := 0; t < n; t++ {
		if t == anchorBit && t > base && anchorBit < n {
			// Anchor crossing: every payload bit below the anchor is
			// determined by the zero state forced here, independent of
			// anything later — flush them and drop their decisions.
			st := 0
			for u := anchorBit - 1; u >= base; u-- {
				bits[u] = byte(st >> 5)
				st = int(dec[(u-base)*numStates+st])
			}
			base = anchorBit
		}
		if (t-base)*numStates == len(dec) {
			emitted := v.mergeFlush(dec, bits, base, t-base)
			if emitted > 0 {
				copy(dec, dec[emitted*numStates:(t-base)*numStates])
				base += emitted
			}
			if len(dec)-(t-base)*numStates < len(dec)/4 {
				// Survivors refuse to merge: grow rather than emit
				// not-yet-final bits (see package comment — exactness
				// beats the bound). The box keeps the grown buffer so the
				// pool recycles it.
				grown := make([]uint8, 2*len(dec))
				copy(grown, dec[:(t-base)*numStates])
				dec = grown
				*dp = dec
			}
		}
		la, lb := llrs[2*t], llrs[2*t+1]
		cost[1] = la
		cost[2] = lb
		cost[3] = la + lb
		col := dec[(t-base)*numStates : (t-base+1)*numStates : (t-base+1)*numStates]
		v.acsColumn(metric, nextMetric, col, &cost)
		metric, nextMetric = nextMetric, metric
	}

	// Final flush of the retained tail. For anchored decodes the payload
	// below the anchor was already emitted: the forward loop always
	// reaches t == anchorBit, so the anchor-crossing flush has run and
	// base >= anchorBit here — only the pad region remains.
	if anchorBit < n {
		// Pad region above the anchor: best-final-state traceback, but
		// only down to what the earlier flushes have not already emitted.
		lo := anchorBit
		if base > lo {
			lo = base
		}
		st := bestState(metric)
		for u := n - 1; u >= lo; u-- {
			bits[u] = byte(st >> 5)
			st = int(dec[(u-base)*numStates+st])
		}
	} else {
		st := 0
		if fromBest {
			st = bestState(metric)
		}
		for u := n - 1; u >= base; u-- {
			bits[u] = byte(st >> 5)
			st = int(dec[(u-base)*numStates+st])
		}
	}
	putDecisions(dp)
	return bits, nil
}

// bestState returns the state with the lowest path metric (lowest state
// wins ties, as in the flat decoder).
func bestState(metric *[numStates]float64) int {
	state, best := 0, math.Inf(1)
	for s, m := range metric {
		if m < best {
			best, state = m, s
		}
	}
	return state
}

// mergeFlush scans the buffered decisions (steps [base, base+buf), buffer-
// relative indexing) for the latest column where the backward paths of all
// frontier states coincide. Bits strictly below that column are final for
// any traceback entering through the frontier; they are emitted into bits
// (absolute indexing) and their count returned, so the caller can drop
// their decisions. Returns 0 when the survivors have not merged.
func (v *Viterbi) mergeFlush(dec []uint8, bits []byte, base, buf int) int {
	if buf == 0 {
		return 0
	}
	var cur [numStates]uint8
	for s := range cur {
		cur[s] = uint8(s)
	}
	mergedAt := -1
	var mergedState uint8
	for t := buf - 1; t >= 0; t-- {
		row := dec[t*numStates : (t+1)*numStates]
		first := row[cur[0]]
		same := true
		for s := range cur {
			cur[s] = row[cur[s]]
			if cur[s] != first {
				same = false
			}
		}
		if same {
			mergedAt, mergedState = t, first
			break
		}
	}
	if mergedAt <= 0 {
		return 0
	}
	st := int(mergedState)
	for t := mergedAt - 1; t >= 0; t-- {
		bits[base+t] = byte(st >> 5)
		st = int(dec[t*numStates+st])
	}
	return mergedAt
}
