package coding

import (
	"encoding/binary"
	"hash/crc32"
)

// The 802.11 frame check sequence is the standard CRC-32 (IEEE 802.3
// polynomial) over the frame body, transmitted least-significant octet
// first. hash/crc32's IEEE table implements exactly this computation.

// AppendFCS returns data with its 4-octet CRC-32 FCS appended.
func AppendFCS(data []byte) []byte {
	out := make([]byte, len(data)+4)
	copy(out, data)
	binary.LittleEndian.PutUint32(out[len(data):], crc32.ChecksumIEEE(data))
	return out
}

// CheckFCS verifies the trailing FCS of a frame produced by AppendFCS and
// returns the body and whether the check passed. Frames shorter than 4
// octets fail.
func CheckFCS(frame []byte) (body []byte, ok bool) {
	if len(frame) < 4 {
		return nil, false
	}
	body = frame[:len(frame)-4]
	want := binary.LittleEndian.Uint32(frame[len(frame)-4:])
	return body, crc32.ChecksumIEEE(body) == want
}
