package coding

// Scrambler is the 802.11 frame-synchronous scrambler with generator
// polynomial S(x) = x⁷ + x⁴ + 1 (§18.3.5.5). The same structure both
// scrambles and descrambles. The zero value is invalid (an all-zero state
// never produces output); construct with NewScrambler.
type Scrambler struct {
	state uint8 // 7-bit shift register, bit 6 = x⁷ stage
}

// DefaultScramblerSeed is the widely used non-zero initial state 1011101.
const DefaultScramblerSeed = 0x5D

// NewScrambler returns a scrambler initialised with the 7-bit seed.
// A zero seed is replaced by DefaultScramblerSeed, since the standard
// requires a pseudo-random non-zero state.
func NewScrambler(seed uint8) *Scrambler {
	seed &= 0x7F
	if seed == 0 {
		seed = DefaultScramblerSeed
	}
	return &Scrambler{state: seed}
}

// NextBit advances the register one step and returns the scrambling bit.
func (s *Scrambler) NextBit() byte {
	b := ((s.state >> 6) ^ (s.state >> 3)) & 1
	s.state = ((s.state << 1) | b) & 0x7F
	return b
}

// Apply XORs the scrambling sequence onto bits in place and returns bits.
// Applying a scrambler with the same seed twice restores the input.
func (s *Scrambler) Apply(bits []byte) []byte {
	for i := range bits {
		bits[i] = (bits[i] ^ s.NextBit()) & 1
	}
	return bits
}

// Sequence returns the next n scrambling bits without data.
func (s *Scrambler) Sequence(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = s.NextBit()
	}
	return out
}
