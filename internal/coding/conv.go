package coding

import "fmt"

// The 802.11 convolutional code: rate 1/2, constraint length 7, generator
// polynomials g0 = 133₈ (output A) and g1 = 171₈ (output B), §18.3.5.6.
const (
	constraintLen = 7
	numStates     = 1 << (constraintLen - 1) // 64
	polyA         = 0o133
	polyB         = 0o171
)

// parity returns the parity (XOR of all bits) of v.
func parity(v uint32) byte {
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return byte(v & 1)
}

// ConvEncode encodes bits with the 802.11 rate-1/2 code, starting from the
// all-zero state. Output is A0 B0 A1 B1 …, twice the input length. Callers
// terminate the trellis by appending six zero tail bits to the input.
func ConvEncode(bits []byte) []byte {
	out := make([]byte, 0, 2*len(bits))
	var reg uint32 // reg holds the last 6 input bits; newest in bit 5... we use shift-in-at-top
	for _, b := range bits {
		v := (uint32(b&1) << 6) | reg
		out = append(out, parity(v&polyA), parity(v&polyB))
		reg = v >> 1
	}
	return out
}

// CodeRate identifies one of the 802.11 puncturing configurations.
type CodeRate int

// Supported code rates.
const (
	Rate1_2 CodeRate = iota // no puncturing
	Rate2_3                 // drop every second B bit
	Rate3_4                 // drop B2 and A3 of every 6 coded bits
)

// String returns the conventional fraction for the rate.
func (r CodeRate) String() string {
	switch r {
	case Rate1_2:
		return "1/2"
	case Rate2_3:
		return "2/3"
	case Rate3_4:
		return "3/4"
	default:
		return fmt.Sprintf("CodeRate(%d)", int(r))
	}
}

// Num and Den return the numerator/denominator of the code rate.
func (r CodeRate) Num() int {
	switch r {
	case Rate1_2:
		return 1
	case Rate2_3:
		return 2
	case Rate3_4:
		return 3
	default:
		panic("coding: unknown rate")
	}
}

// Den returns the denominator of the code rate fraction.
func (r CodeRate) Den() int {
	switch r {
	case Rate1_2:
		return 2
	case Rate2_3:
		return 3
	case Rate3_4:
		return 4
	default:
		panic("coding: unknown rate")
	}
}

// puncturePattern returns the keep-mask over one period of mother-code
// output bits (A1 B1 A2 B2 …), per §18.3.5.6 figures 18-9/18-10.
func (r CodeRate) puncturePattern() []bool {
	switch r {
	case Rate1_2:
		return []bool{true, true}
	case Rate2_3:
		// period: A1 B1 A2 B2 → keep A1 B1 A2, drop B2
		return []bool{true, true, true, false}
	case Rate3_4:
		// period: A1 B1 A2 B2 A3 B3 → keep A1 B1 A2 B3, drop B2 A3
		return []bool{true, true, true, false, false, true}
	default:
		panic("coding: unknown rate")
	}
}

// Puncture removes the positions dropped by rate r from mother-code output.
func Puncture(coded []byte, r CodeRate) []byte {
	pat := r.puncturePattern()
	out := make([]byte, 0, len(coded))
	for i, b := range coded {
		if pat[i%len(pat)] {
			out = append(out, b)
		}
	}
	return out
}

// Depuncture expands a punctured LLR stream back to mother-code positions,
// inserting 0 (erasure) where bits were dropped. motherLen is the expected
// output length (2 × number of information bits).
func Depuncture(llrs []float64, r CodeRate, motherLen int) ([]float64, error) {
	pat := r.puncturePattern()
	out := make([]float64, motherLen)
	j := 0
	for i := 0; i < motherLen; i++ {
		if pat[i%len(pat)] {
			if j >= len(llrs) {
				return nil, fmt.Errorf("coding: depuncture needs %d llrs, have %d", j+1, len(llrs))
			}
			out[i] = llrs[j]
			j++
		}
	}
	if j != len(llrs) {
		return nil, fmt.Errorf("coding: depuncture consumed %d of %d llrs", j, len(llrs))
	}
	return out, nil
}

// PuncturedLen returns the number of transmitted coded bits for nInfo
// information bits at rate r. nInfo must make the mother output a whole
// number of puncturing periods for rates 2/3 and 3/4 (true for all 802.11
// OFDM symbol sizes).
func PuncturedLen(nInfo int, r CodeRate) int {
	mother := 2 * nInfo
	pat := r.puncturePattern()
	keep := 0
	for _, k := range pat {
		if k {
			keep++
		}
	}
	full := mother / len(pat)
	n := full * keep
	for i := full * len(pat); i < mother; i++ {
		if pat[i%len(pat)] {
			n++
		}
	}
	return n
}
