package coding

import "fmt"

// Interleaver is the 802.11 two-permutation block interleaver (§18.3.5.7).
// It operates on one OFDM symbol's worth of coded bits (Ncbps) and ensures
// adjacent coded bits map onto nonadjacent subcarriers and alternate between
// more and less significant constellation bits.
type Interleaver struct {
	ncbps int
	perm  []int // perm[k] = position after interleaving of input bit k
	inv   []int
}

// NewInterleaver builds the interleaver for ncbps coded bits per symbol and
// nbpsc coded bits per subcarrier (1, 2, 4 or 6 for 802.11a/g).
func NewInterleaver(ncbps, nbpsc int) (*Interleaver, error) {
	if ncbps <= 0 || ncbps%16 != 0 {
		return nil, fmt.Errorf("coding: Ncbps %d must be a positive multiple of 16", ncbps)
	}
	s := nbpsc / 2
	if s < 1 {
		s = 1
	}
	il := &Interleaver{
		ncbps: ncbps,
		perm:  make([]int, ncbps),
		inv:   make([]int, ncbps),
	}
	for k := 0; k < ncbps; k++ {
		// first permutation
		i := (ncbps/16)*(k%16) + k/16
		// second permutation
		j := s*(i/s) + (i+ncbps-16*i/ncbps)%s
		il.perm[k] = j
		il.inv[j] = k
	}
	return il, nil
}

// MustInterleaver is NewInterleaver but panics on error.
func MustInterleaver(ncbps, nbpsc int) *Interleaver {
	il, err := NewInterleaver(ncbps, nbpsc)
	if err != nil {
		panic(err)
	}
	return il
}

// Ncbps returns the block size in bits.
func (il *Interleaver) Ncbps() int { return il.ncbps }

// Interleave permutes one block of exactly Ncbps bits into a fresh slice.
func (il *Interleaver) Interleave(bits []byte) []byte {
	if len(bits) != il.ncbps {
		panic(fmt.Sprintf("coding: interleave block size %d, want %d", len(bits), il.ncbps))
	}
	out := make([]byte, il.ncbps)
	for k, b := range bits {
		out[il.perm[k]] = b
	}
	return out
}

// InterleaveInto is Interleave into a caller-provided block of Ncbps
// bytes, avoiding the allocation.
func (il *Interleaver) InterleaveInto(dst, bits []byte) {
	if len(bits) != il.ncbps || len(dst) != il.ncbps {
		panic(fmt.Sprintf("coding: interleave block sizes %d/%d, want %d", len(dst), len(bits), il.ncbps))
	}
	for k, b := range bits {
		dst[il.perm[k]] = b
	}
}

// Deinterleave inverts Interleave for one block of bits.
func (il *Interleaver) Deinterleave(bits []byte) []byte {
	if len(bits) != il.ncbps {
		panic(fmt.Sprintf("coding: deinterleave block size %d, want %d", len(bits), il.ncbps))
	}
	out := make([]byte, il.ncbps)
	for j, b := range bits {
		out[il.inv[j]] = b
	}
	return out
}

// DeinterleaveInto is Deinterleave into a caller-provided block of Ncbps
// bytes, avoiding the allocation.
func (il *Interleaver) DeinterleaveInto(dst, bits []byte) {
	if len(bits) != il.ncbps || len(dst) != il.ncbps {
		panic(fmt.Sprintf("coding: deinterleave block sizes %d/%d, want %d", len(dst), len(bits), il.ncbps))
	}
	for j, b := range bits {
		dst[il.inv[j]] = b
	}
}

// DeinterleaveLLR inverts the permutation on a block of per-bit LLRs.
func (il *Interleaver) DeinterleaveLLR(llrs []float64) []float64 {
	out := make([]float64, il.ncbps)
	il.DeinterleaveLLRInto(out, llrs)
	return out
}

// DeinterleaveLLRInto is DeinterleaveLLR into a caller-provided block of
// Ncbps weights, avoiding the allocation (the parallel soft decode fans
// symbol blocks directly into one packet-wide LLR stream).
func (il *Interleaver) DeinterleaveLLRInto(dst, llrs []float64) {
	if len(llrs) != il.ncbps || len(dst) != il.ncbps {
		panic(fmt.Sprintf("coding: deinterleave block sizes %d/%d, want %d", len(dst), len(llrs), il.ncbps))
	}
	for j, l := range llrs {
		dst[il.inv[j]] = l
	}
}
