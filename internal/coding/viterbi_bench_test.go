package coding

import (
	"math/rand"
	"testing"
)

// BenchmarkViterbiDecode measures the hard-decision decode of one 1200-bit
// DATA field (the dominant per-packet receiver kernel).
func BenchmarkViterbiDecode(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	bits := make([]byte, 1200)
	for i := range bits {
		bits[i] = byte(r.Intn(2))
	}
	coded := ConvEncode(bits)
	// Flip a few percent of the coded bits.
	for i := range coded {
		if r.Intn(25) == 0 {
			coded[i] ^= 1
		}
	}
	llrs := HardToLLR(coded)
	v := NewViterbi()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Decode(llrs); err != nil {
			b.Fatal(err)
		}
	}
}
