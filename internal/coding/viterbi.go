package coding

import (
	"fmt"
	"math"
)

// Viterbi is a maximum-likelihood decoder for the 802.11 rate-1/2 K=7
// convolutional code. It consumes per-bit log-likelihood ratios (positive =
// bit 0 more likely; 0 = erasure, as produced by Depuncture), so a single
// implementation serves both hard decisions (±1 LLRs) and soft decisions.
//
// The decoder assumes the encoder started in the all-zero state and, when
// Terminated is set, that six zero tail bits returned it there.
type Viterbi struct {
	// Terminated selects traceback from state 0 (true, the 802.11 case
	// with tail bits) or from the best final state (false).
	Terminated bool

	// branch output bits for transition (state, input): outA|outB<<1
	outs [numStates][2]byte
	next [numStates][2]int
}

// NewViterbi returns a decoder with precomputed trellis transitions.
func NewViterbi() *Viterbi {
	v := &Viterbi{Terminated: true}
	for s := 0; s < numStates; s++ {
		for in := 0; in < 2; in++ {
			reg := (uint32(in) << 6) | uint32(s)
			a := parity(reg & polyA)
			b := parity(reg & polyB)
			v.outs[s][in] = a | b<<1
			v.next[s][in] = int(reg >> 1)
		}
	}
	return v
}

// Decode recovers the information bits (including any tail bits the encoder
// appended) from mother-code LLRs. len(llrs) must be even; nInfo =
// len(llrs)/2 bits are returned.
func (v *Viterbi) Decode(llrs []float64) ([]byte, error) {
	if len(llrs)%2 != 0 {
		return nil, fmt.Errorf("coding: Viterbi needs an even LLR count, got %d", len(llrs))
	}
	n := len(llrs) / 2
	if n == 0 {
		return nil, nil
	}

	const inf = math.MaxFloat64 / 4
	metric := make([]float64, numStates)
	nextMetric := make([]float64, numStates)
	for s := 1; s < numStates; s++ {
		metric[s] = inf
	}
	// decisions[t][s] = input bit that won at state s, step t, plus the
	// predecessor packed as pred<<1|bit would cost memory; store winning
	// predecessor state and bit separately in two compact arrays.
	predecessor := make([][]uint8, n) // predecessor state is 6 bits
	inputBit := make([][]uint8, n)
	for t := range predecessor {
		predecessor[t] = make([]uint8, numStates)
		inputBit[t] = make([]uint8, numStates)
	}

	for t := 0; t < n; t++ {
		la, lb := llrs[2*t], llrs[2*t+1]
		for s := range nextMetric {
			nextMetric[s] = inf
		}
		for s := 0; s < numStates; s++ {
			m := metric[s]
			if m >= inf {
				continue
			}
			for in := 0; in < 2; in++ {
				out := v.outs[s][in]
				// cost: add llr when the hypothesised bit is 1
				// (constant offsets per step cancel between branches)
				cost := m
				if out&1 != 0 {
					cost += la
				}
				if out&2 != 0 {
					cost += lb
				}
				ns := v.next[s][in]
				if cost < nextMetric[ns] {
					nextMetric[ns] = cost
					predecessor[t][ns] = uint8(s)
					inputBit[t][ns] = uint8(in)
				}
			}
		}
		metric, nextMetric = nextMetric, metric
	}

	// Traceback.
	state := 0
	if !v.Terminated {
		best := math.Inf(1)
		for s, m := range metric {
			if m < best {
				best, state = m, s
			}
		}
	}
	bits := make([]byte, n)
	for t := n - 1; t >= 0; t-- {
		bits[t] = inputBit[t][state]
		state = int(predecessor[t][state])
	}
	return bits, nil
}

// DecodeHard is a convenience wrapper that decodes hard-decision
// mother-code bits.
func (v *Viterbi) DecodeHard(coded []byte) ([]byte, error) {
	return v.Decode(HardToLLR(coded))
}

// DecodePunctured depunctures llrs for rate r (nInfo information bits,
// including tail) and decodes.
func (v *Viterbi) DecodePunctured(llrs []float64, r CodeRate, nInfo int) ([]byte, error) {
	mother, err := Depuncture(llrs, r, 2*nInfo)
	if err != nil {
		return nil, err
	}
	return v.Decode(mother)
}
