package coding

import (
	"fmt"
	"math"
	"sync"
)

// decisionsPool recycles the flat survivor-decision arrays between
// decodes: at ~64 bytes per trellis step they were the last recurring
// per-packet allocation (~83 KB per 1200-bit decode). The pool stores
// *[]uint8 boxes that are themselves recycled — callers hand the same
// pointer back — so steady state allocates neither the buffer nor an
// interface box.
var decisionsPool sync.Pool

// getDecisions returns a boxed decision buffer with capacity for at least
// n trellis steps, sliced to length n*numStates.
func getDecisions(n int) *[]uint8 {
	if v := decisionsPool.Get(); v != nil {
		bp := v.(*[]uint8)
		if cap(*bp) >= n*numStates {
			*bp = (*bp)[:n*numStates]
			return bp
		}
	}
	buf := make([]uint8, n*numStates)
	return &buf
}

// putDecisions recycles a box obtained from getDecisions. The caller must
// not retain the box or its buffer.
func putDecisions(bp *[]uint8) {
	decisionsPool.Put(bp)
}

// Viterbi is a maximum-likelihood decoder for the 802.11 rate-1/2 K=7
// convolutional code. It consumes per-bit log-likelihood ratios (positive =
// bit 0 more likely; 0 = erasure, as produced by Depuncture), so a single
// implementation serves both hard decisions (±1 LLRs) and soft decisions.
//
// The decoder assumes the encoder started in the all-zero state and, when
// Terminated is set, that six zero tail bits returned it there.
type Viterbi struct {
	// Terminated selects traceback from state 0 (true, the 802.11 case
	// with tail bits) or from the best final state (false).
	Terminated bool

	// branch output bits for transition (state, input): outA|outB<<1
	outs [numStates][2]byte
	next [numStates][2]int
	// outsIn[in][s] is outs[s][in] flattened per input bit, the layout the
	// destination-state ACS loop walks sequentially.
	outsIn [2][numStates]byte
}

// NewViterbi returns a decoder with precomputed trellis transitions.
func NewViterbi() *Viterbi {
	v := &Viterbi{Terminated: true}
	for s := 0; s < numStates; s++ {
		for in := 0; in < 2; in++ {
			reg := (uint32(in) << 6) | uint32(s)
			a := parity(reg & polyA)
			b := parity(reg & polyB)
			v.outs[s][in] = a | b<<1
			v.next[s][in] = int(reg >> 1)
			v.outsIn[in][s] = a | b<<1
		}
	}
	return v
}

// Decode recovers the information bits (including any tail bits the encoder
// appended) from mother-code LLRs. len(llrs) must be even; nInfo =
// len(llrs)/2 bits are returned.
//
// The add-compare-select loop iterates over destination states: state ns
// has exactly the two predecessors s = 2·(ns mod 32) and s+1 with input
// bit ns>>5 (from next = (in<<6|s)>>1), so each trellis column is a flat
// pass of two adds and one compare per state with no infinity screening,
// and the winning predecessor is recorded in a single flat decision array
// (the input bit is implied by the state). Branch costs and tie-breaking
// (lowest predecessor wins) are arithmetically identical to the reference
// per-source-state formulation, so decoded output is bit-for-bit
// unchanged.
func (v *Viterbi) Decode(llrs []float64) ([]byte, error) {
	if len(llrs)%2 != 0 {
		return nil, fmt.Errorf("coding: Viterbi needs an even LLR count, got %d", len(llrs))
	}
	n := len(llrs) / 2
	if n == 0 {
		return nil, nil
	}
	if n > streamEngage {
		return v.decodeWindowed(llrs, n, !v.Terminated, streamWindow)
	}

	dp, metric := v.forwardPass(llrs, n)
	decisions := *dp
	defer putDecisions(dp)

	// Traceback; the input bit that led into each state is its top bit.
	state := 0
	if !v.Terminated {
		state = bestState(metric)
	}
	bits := make([]byte, n)
	traceback(decisions, bits, n, state)
	return bits, nil
}

// forwardPass runs the add-compare-select recursion over n trellis steps,
// returning the boxed flat decision array (winning predecessor of each
// state at each step; return the box to putDecisions when done) and the
// final path metrics.
func (v *Viterbi) forwardPass(llrs []float64, n int) (*[]uint8, *[numStates]float64) {
	const inf = math.MaxFloat64 / 4
	var metricA, metricB [numStates]float64
	metric, nextMetric := &metricA, &metricB
	for s := 1; s < numStates; s++ {
		metric[s] = inf
	}
	// decisions[t*numStates+ns] = winning predecessor state of ns at step t.
	// Recycled across decodes; every slot [0, n*numStates) is overwritten
	// below before the traceback reads it.
	dp := getDecisions(n)
	decisions := *dp

	// Per-step branch costs indexed by the branch output pair outA|outB<<1:
	// cost[o] = (la if o&1) + (lb if o&2). For o = 3 the two LLRs are
	// summed before the path metric, reassociating the reference
	// implementation's conditional adds — exact for hard (±1) LLRs and
	// within an ulp for soft ones.
	var cost [4]float64
	for t := 0; t < n; t++ {
		la, lb := llrs[2*t], llrs[2*t+1]
		cost[1] = la
		cost[2] = lb
		cost[3] = la + lb
		dec := decisions[t*numStates : (t+1)*numStates : (t+1)*numStates]
		v.acsColumn(metric, nextMetric, dec, &cost)
		metric, nextMetric = nextMetric, metric
	}
	return dp, metric
}

// acsColumn advances one trellis column: destination states split by their
// implied input bit (the top bit); each half walks the source metrics
// sequentially in pairs. Shared by the flat and windowed decoders so both
// produce identical metrics and decisions.
func (v *Viterbi) acsColumn(metric, nextMetric *[numStates]float64, dec []uint8, cost *[4]float64) {
	for in := 0; in < 2; in++ {
		outs := &v.outsIn[in]
		base := in << 5
		half := dec[base : base+numStates/2 : base+numStates/2]
		nm := nextMetric[base : base+numStates/2]
		for k := 0; k < numStates/2; k++ {
			s0 := 2 * k
			s1 := s0 + 1
			c0 := metric[s0] + cost[outs[s0]&3]
			c1 := metric[s1] + cost[outs[s1]&3]
			if c0 <= c1 {
				nm[k] = c0
				half[k] = uint8(s0)
			} else {
				nm[k] = c1
				half[k] = uint8(s1)
			}
		}
	}
}

// traceback walks the survivor path that ends in state at step upto,
// filling bits[0:upto].
func traceback(decisions []uint8, bits []byte, upto, state int) {
	for t := upto - 1; t >= 0; t-- {
		bits[t] = byte(state >> 5)
		state = int(decisions[t*numStates+state])
	}
}

// DecodeAnchored is Decode for streams whose encoder register is known to
// return to the all-zero state after anchorBit information bits, with
// further (uninformative) bits after it — the 802.11 DATA field, where
// SERVICE+PSDU+tail end in state zero and only scrambled pad bits follow.
// Bits [0, anchorBit) are traced back from that known zero state, so
// channel errors on the trailing pad can never corrupt payload bits (with
// best-final-state traceback they can when the pad is shorter than the
// survivor-merge depth). The trailing bits are traced from the best final
// state as in unterminated decoding.
func (v *Viterbi) DecodeAnchored(llrs []float64, anchorBit int) ([]byte, error) {
	n := len(llrs) / 2
	if anchorBit < 0 || anchorBit > n {
		return nil, fmt.Errorf("coding: anchor %d outside [0,%d]", anchorBit, n)
	}
	if anchorBit == n {
		sav := v.Terminated
		v.Terminated = true
		bits, err := v.Decode(llrs)
		v.Terminated = sav
		return bits, err
	}
	if len(llrs)%2 != 0 {
		return nil, fmt.Errorf("coding: Viterbi needs an even LLR count, got %d", len(llrs))
	}
	if n == 0 {
		return nil, nil
	}
	if n > streamEngage {
		return v.decodeWindowed(llrs, anchorBit, true, streamWindow)
	}
	dp, finalMetric := v.forwardPass(llrs, n)
	decisions := *dp
	defer putDecisions(dp)
	bits := make([]byte, n)
	// Trailing (pad) region: unterminated traceback from the best final
	// state, but only the bits after the anchor are kept from it.
	state := bestState(finalMetric)
	for t := n - 1; t >= anchorBit; t-- {
		bits[t] = byte(state >> 5)
		state = int(decisions[t*numStates+state])
	}
	// Payload region: traceback anchored at the known zero state.
	traceback(decisions, bits, anchorBit, 0)
	return bits, nil
}

// DecodePuncturedAnchored depunctures llrs for rate r (nInfo information
// bits) and decodes with the zero-state anchor after anchorBit bits.
func (v *Viterbi) DecodePuncturedAnchored(llrs []float64, r CodeRate, nInfo, anchorBit int) ([]byte, error) {
	mother, err := Depuncture(llrs, r, 2*nInfo)
	if err != nil {
		return nil, err
	}
	return v.DecodeAnchored(mother, anchorBit)
}

// DecodeHard is a convenience wrapper that decodes hard-decision
// mother-code bits.
func (v *Viterbi) DecodeHard(coded []byte) ([]byte, error) {
	return v.Decode(HardToLLR(coded))
}

// DecodePunctured depunctures llrs for rate r (nInfo information bits,
// including tail) and decodes.
func (v *Viterbi) DecodePunctured(llrs []float64, r CodeRate, nInfo int) ([]byte, error) {
	mother, err := Depuncture(llrs, r, 2*nInfo)
	if err != nil {
		return nil, err
	}
	return v.Decode(mother)
}
