// Package api is the shared HTTP plumbing of the /v1 surface: one JSON
// error envelope, bearer-token auth middleware, and limit/cursor
// pagination helpers. The jobs API (cmd/cprecycle-bench), the dist
// coordinator's worker tier (internal/sweep/dist) and the results-history
// surface (internal/sweep/history) all build on it, so every endpoint
// answers failures in the same shape:
//
//	{"error":{"code":"not_found","message":"no job \"j9\""}}
//
// with Content-Type application/json. Codes are stable snake_case tokens
// derived from the HTTP status (bad_request, unauthorized, forbidden,
// not_found, conflict, gone, internal, …) unless a handler supplies a
// more specific one. Status codes themselves are the contract the
// machine clients key on (the dist worker reacts to 401/403/410 without
// reading bodies); the envelope exists for humans and log pipelines.
package api

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// ErrorDetail is the inner object of the error envelope.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorBody is the JSON error envelope every /v1 endpoint answers
// failures with.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// CodeForStatus maps an HTTP status to its default envelope code.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusUnauthorized:
		return "unauthorized"
	case http.StatusForbidden:
		return "forbidden"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusConflict:
		return "conflict"
	case http.StatusGone:
		return "gone"
	case http.StatusInternalServerError:
		return "internal"
	default:
		if status >= 400 && status < 500 {
			return "bad_request"
		}
		return "internal"
	}
}

// WriteJSON writes v as an indented JSON response. The returned error is
// a mid-body encoding failure (client gone, marshalling bug) — the
// status line is already out, so callers can only log it.
func WriteJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Error writes the error envelope with the status' default code.
func Error(w http.ResponseWriter, status int, err error) {
	ErrorCode(w, status, CodeForStatus(status), err.Error())
}

// Errorf is Error over a formatted message.
func Errorf(w http.ResponseWriter, status int, format string, args ...any) {
	ErrorCode(w, status, CodeForStatus(status), fmt.Sprintf(format, args...))
}

// ErrorCode writes the error envelope with an explicit code.
func ErrorCode(w http.ResponseWriter, status int, code, message string) {
	// The envelope is small and static-shaped; an encode failure here
	// means the client is gone, which needs no handling.
	_ = WriteJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: message}})
}

// BearerAuth wraps h so every request must carry "Authorization: Bearer
// <token>". An empty token disables the check (localhost
// experimentation; production services set one). The comparison is
// constant-time and failures answer with the standard envelope.
func BearerAuth(token string, h http.Handler) http.Handler {
	if token == "" {
		return h
	}
	want := []byte("Bearer " + token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="cprecycle"`)
			ErrorCode(w, http.StatusUnauthorized, "unauthorized", "missing or invalid bearer token")
			return
		}
		h.ServeHTTP(w, r)
	})
}

// List is the paginated collection envelope: the page's items plus an
// opaque cursor naming the next page ("" when the listing is exhausted).
type List[T any] struct {
	Items      []T    `json:"items"`
	NextCursor string `json:"next_cursor,omitempty"`
}

// Page is a parsed limit/cursor query pair.
type Page struct {
	Limit  int
	Offset int
}

// ParsePage reads the standard "limit" and "cursor" query parameters.
// limit defaults to defLimit and is clamped to [1, maxLimit]; cursor is
// the opaque string a previous List.NextCursor handed out (internally a
// decimal offset). A malformed limit or cursor is a client error.
func ParsePage(r *http.Request, defLimit, maxLimit int) (Page, error) {
	p := Page{Limit: defLimit}
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return p, fmt.Errorf("bad limit %q: want a positive integer", s)
		}
		p.Limit = n
	}
	if p.Limit > maxLimit {
		p.Limit = maxLimit
	}
	if s := r.URL.Query().Get("cursor"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return p, fmt.Errorf("bad cursor %q", s)
		}
		p.Offset = n
	}
	return p, nil
}

// Paginate slices one page out of items (already in response order) and
// returns it with the next page's cursor ("" when items are exhausted).
// A cursor past the end yields an empty page, not an error: the listing
// may have shrunk between pages.
func Paginate[T any](items []T, p Page) List[T] {
	if p.Offset >= len(items) {
		return List[T]{Items: []T{}}
	}
	end := p.Offset + p.Limit
	next := ""
	if end < len(items) {
		next = strconv.Itoa(end)
	} else {
		end = len(items)
	}
	return List[T]{Items: items[p.Offset:end], NextCursor: next}
}
