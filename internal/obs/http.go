package obs

import (
	"bytes"
	"io"
	"net/http"
)

// Handler returns an http.Handler serving the Default registry in
// Prometheus text format, followed by any extra collectors (typically
// instance-scoped WritePrometheus methods such as a dist.Coordinator's
// fleet gauges). The response is staged in a buffer so a slow scraper
// never holds metric state mid-render.
func Handler(extras ...func(io.Writer)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		Default.WritePrometheus(&buf)
		for _, extra := range extras {
			extra(&buf)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(buf.Bytes())
	})
}
