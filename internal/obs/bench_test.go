package obs

import (
	"testing"
	"time"
)

var benchReg = NewRegistry()

var (
	benchPackets = benchReg.Counter("bench_packets_total", "B.")
	benchPacket  = benchReg.Histogram("bench_packet_seconds", "B.", DurationBuckets)
	benchStages  = []*Histogram{
		benchReg.Histogram("bench_stage_seconds", "B.", DurationBuckets, Label{Name: "stage", Value: "tx"}),
		benchReg.Histogram("bench_stage_seconds", "B.", DurationBuckets, Label{Name: "stage", Value: "train"}),
		benchReg.Histogram("bench_stage_seconds", "B.", DurationBuckets, Label{Name: "stage", Value: "observe"}),
		benchReg.Histogram("bench_stage_seconds", "B.", DurationBuckets, Label{Name: "stage", Value: "decode"}),
	}
)

func BenchmarkMetricCounterInc(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchPackets.Inc()
	}
}

func BenchmarkMetricHistogramObserve(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchPacket.Observe(1.1e-3)
	}
}

// BenchmarkPacketMetrics replays the full set of metric updates that one
// packet through experiments.RunPacket + rx incurs (four stage spans,
// one whole-packet span, one counter) — the number bench-gate watches to
// keep instrumentation cost invisible next to a ~1ms packet.
func BenchmarkPacketMetrics(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		for _, h := range benchStages {
			s := time.Now()
			h.ObserveSince(s)
		}
		benchPacket.ObserveSince(t0)
		benchPackets.Inc()
	}
}
