// Package obs is the process-wide observability core: a dependency-free
// metrics registry exposing atomic counters, gauges and fixed-bucket
// histograms in the Prometheus text exposition format.
//
// The design contract is zero allocations and a handful of atomic
// operations on every update path: instruments are registered once at
// init (package-level vars in the packages that own them), label sets
// are rendered to strings at registration time, histogram buckets are
// fixed at construction, and Observe/Inc/Add/Set never touch the
// registry lock. The exposition path (WritePrometheus, Handler) is the
// cold side and may allocate freely.
//
// Metric naming follows the Prometheus conventions with a process-wide
// "cpr_" prefix and a subsystem segment: cpr_sweep_* for the sweep/
// packet hot path (internal/experiments, internal/rx, internal/sweep),
// cpr_dist_* for the distributed tier (internal/sweep/dist),
// cpr_store_* for the result store, cpr_history_* for the results-
// history index, and cpr_supervisor_* for the autoscaling supervisor's
// control loop (internal/sweep/supervise: target/live gauges, spawn,
// crash, quarantine, scale-down and stuck-detection counters), with
// _total suffixes on counters and _seconds units on histograms. Label
// values are closed sets known at init (e.g. stage="observe") — never
// unbounded identifiers like job or worker ids, which belong in logs
// and events, not in metric cardinality.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric label pair, fixed at registration.
type Label struct {
	Name  string
	Value string
}

// DurationBuckets is the default histogram bucket layout for latencies:
// 1µs to 10s in a 1-2.5-5 progression, wide enough for a sub-10µs DSP
// kernel and a multi-second sweep point alike.
var DurationBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v      atomic.Int64
	labels string
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) labelKey() string { return c.labels }
func (c *Counter) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, c.labels, c.v.Load())
}
func (c *Counter) snapshot(dst map[string]float64, name string) {
	dst[name+c.labels] = float64(c.v.Load())
}

// Gauge is a settable integer-valued metric.
type Gauge struct {
	v      atomic.Int64
	labels string
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) labelKey() string { return g.labels }
func (g *Gauge) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, g.labels, g.v.Load())
}
func (g *Gauge) snapshot(dst map[string]float64, name string) {
	dst[name+g.labels] = float64(g.v.Load())
}

// GaugeFunc is a gauge sampled at scrape time from a closure — for
// values some other subsystem already tracks (goroutine counts, queue
// depths) where mirroring into an atomic would just drift.
type GaugeFunc struct {
	fn     func() float64
	labels string
}

func (g *GaugeFunc) labelKey() string { return g.labels }
func (g *GaugeFunc) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %s\n", name, g.labels, formatFloat(g.fn()))
}
func (g *GaugeFunc) snapshot(dst map[string]float64, name string) {
	dst[name+g.labels] = g.fn()
}

// Histogram is a fixed-bucket histogram. Observe is lock-free: one
// linear bucket scan (bucket counts are tiny and fixed) plus three
// atomic updates, no allocations.
type Histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	labels string        // rendered label set, "" or `{a="b",…}`
	les    []string      // pre-rendered `le="…"` label sets per bucket
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the span hook the
// hot paths use: h.ObserveSince(start) costs two time reads and one
// Observe.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) labelKey() string { return h.labels }
func (h *Histogram) write(w io.Writer, name string) {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, h.les[i], cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, h.labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, h.labels, h.count.Load())
}
func (h *Histogram) snapshot(dst map[string]float64, name string) {
	dst[name+"_count"+h.labels] = float64(h.count.Load())
	dst[name+"_sum"+h.labels] = h.Sum()
}

// instrument is one registered metric (one label set of one family).
type instrument interface {
	labelKey() string
	write(w io.Writer, name string)
	snapshot(dst map[string]float64, name string)
}

// family groups every label set registered under one metric name.
type family struct {
	name  string
	help  string
	typ   string // "counter", "gauge", "histogram"
	insts []instrument
}

// Registry holds registered metric families in registration order.
// Registration is init-time and panics on misuse (duplicate label set,
// type clash) — a metrics wiring bug should fail loudly at startup, not
// corrupt a scrape. Updates to registered instruments never touch the
// registry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry. Most code uses the package
// Default registry via the package-level constructors.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Default is the process-wide registry served by Handler.
var Default = NewRegistry()

func (r *Registry) register(name, help, typ string, inst instrument) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	for _, have := range f.insts {
		if have.labelKey() == inst.labelKey() {
			panic(fmt.Sprintf("obs: duplicate registration of %s%s", name, inst.labelKey()))
		}
	}
	f.insts = append(f.insts, inst)
}

// Counter registers a counter with the given constant labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{labels: renderLabels(labels)}
	r.register(name, help, "counter", c)
	return c
}

// Gauge registers an integer gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{labels: renderLabels(labels)}
	r.register(name, help, "gauge", g)
	return g
}

// GaugeFunc registers a scrape-time sampled gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) *GaugeFunc {
	g := &GaugeFunc{fn: fn, labels: renderLabels(labels)}
	r.register(name, help, "gauge", g)
	return g
}

// Histogram registers a fixed-bucket histogram; bounds must be
// ascending upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
		labels: renderLabels(labels),
	}
	h.les = make([]string, len(bounds)+1)
	for i := range h.les {
		le := "+Inf"
		if i < len(bounds) {
			le = formatFloat(bounds[i])
		}
		h.les[i] = mergeLabels(labels, Label{Name: "le", Value: le})
	}
	r.register(name, help, "histogram", h)
	return h
}

// NewCounter, NewGauge, NewGaugeFunc and NewHistogram register on the
// Default registry.
func NewCounter(name, help string, labels ...Label) *Counter {
	return Default.Counter(name, help, labels...)
}
func NewGauge(name, help string, labels ...Label) *Gauge {
	return Default.Gauge(name, help, labels...)
}
func NewGaugeFunc(name, help string, fn func() float64, labels ...Label) *GaugeFunc {
	return Default.GaugeFunc(name, help, fn, labels...)
}
func NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return Default.Histogram(name, help, bounds, labels...)
}

// WritePrometheus writes every registered family in the Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		WriteHeader(w, f.name, f.typ, f.help)
		for _, inst := range f.insts {
			inst.write(w, f.name)
		}
	}
}

// Snapshot returns every registered series as a flat name{labels} →
// value map: counter and gauge values directly, histograms as their
// _count and _sum series. It is the cold-path feed for aggregated
// status endpoints; keys are sorted-stable only through the map's
// consumer.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	out := make(map[string]float64)
	for _, f := range fams {
		for _, inst := range f.insts {
			inst.snapshot(out, f.name)
		}
	}
	return out
}

// Snapshot flattens the Default registry.
func Snapshot() map[string]float64 { return Default.Snapshot() }

// WriteHeader writes a family's # HELP and # TYPE lines. Exported so
// per-instance collectors (a coordinator's fleet gauges, a worker's
// lease counters) can render scrape-time series next to the registry's.
func WriteHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// WriteSample writes one sample line with the given labels.
func WriteSample(w io.Writer, name string, value float64, labels ...Label) {
	fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(labels), formatFloat(value))
}

// renderLabels renders a label set to its exposition form, sorted by
// name; "" for an empty set.
func renderLabels(labels []Label) string {
	return mergeLabels(labels)
}

// mergeLabels renders base labels plus extras, sorted by name.
func mergeLabels(base []Label, extra ...Label) string {
	all := make([]Label, 0, len(base)+len(extra))
	all = append(all, base...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if !validName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
