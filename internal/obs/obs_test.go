package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Ops.")
	c.Inc()
	c.Add(4)
	g := r.Gauge("test_depth", "Depth.")
	g.Set(7)
	g.Add(-2)
	r.GaugeFunc("test_live", "Live.", func() float64 { return 2.5 })

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total Ops.\n# TYPE test_ops_total counter\ntest_ops_total 5\n",
		"# HELP test_depth Depth.\n# TYPE test_depth gauge\ntest_depth 5\n",
		"test_live 2.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelsRenderedSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "T.", Label{Name: "zz", Value: "b"}, Label{Name: "aa", Value: `q"\` + "\n"})
	c.Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	want := `test_total{aa="q\"\\\n",zz="b"} 1`
	if !strings.Contains(b.String(), want+"\n") {
		t.Fatalf("want %q in:\n%s", want, b.String())
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Latency.", []float64{0.1, 1}, Label{Name: "stage", Value: "x"})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram\n",
		`test_seconds_bucket{le="0.1",stage="x"} 1` + "\n",
		`test_seconds_bucket{le="1",stage="x"} 3` + "\n",
		`test_seconds_bucket{le="+Inf",stage="x"} 4` + "\n",
		`test_seconds_sum{stage="x"} 6.05` + "\n",
		`test_seconds_count{stage="x"} 4` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-6.05) > 1e-12 {
		t.Errorf("Sum = %g, want 6.05", h.Sum())
	}
}

// One family may gain label-set instances from several packages; the
// exposition must emit one HELP/TYPE header per family, then every
// instance.
func TestSharedFamilyAcrossRegistrations(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("test_stage_seconds", "Per-stage.", []float64{1}, Label{Name: "stage", Value: "observe"})
	b := r.Histogram("test_stage_seconds", "Per-stage.", []float64{1}, Label{Name: "stage", Value: "decode"})
	a.Observe(0.5)
	b.Observe(2)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if strings.Count(out, "# TYPE test_stage_seconds histogram") != 1 {
		t.Errorf("want exactly one TYPE header:\n%s", out)
	}
	for _, want := range []string{
		`test_stage_seconds_count{stage="observe"} 1`,
		`test_stage_seconds_count{stage="decode"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "T.", Label{Name: "k", Value: "v"})
	assertPanics(t, "duplicate label set", func() {
		r.Counter("test_total", "T.", Label{Name: "k", Value: "v"})
	})
	assertPanics(t, "type clash", func() {
		r.Gauge("test_total", "T.")
	})
}

func assertPanics(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "T.")
	c.Add(3)
	h := r.Histogram("test_seconds", "T.", []float64{1}, Label{Name: "stage", Value: "x"})
	h.Observe(0.25)
	snap := r.Snapshot()
	if snap["test_total"] != 3 {
		t.Errorf("test_total = %v", snap["test_total"])
	}
	if snap[`test_seconds_count{stage="x"}`] != 1 {
		t.Errorf("count = %v", snap[`test_seconds_count{stage="x"}`])
	}
	if snap[`test_seconds_sum{stage="x"}`] != 0.25 {
		t.Errorf("sum = %v", snap[`test_seconds_sum{stage="x"}`])
	}
}

func TestWriteSampleHelpers(t *testing.T) {
	var b strings.Builder
	WriteHeader(&b, "test_g", "gauge", "Multi\nline.")
	WriteSample(&b, "test_g", 1.5, Label{Name: "state", Value: "live"})
	out := b.String()
	want := "# HELP test_g Multi\\nline.\n# TYPE test_g gauge\ntest_g{state=\"live\"} 1.5\n"
	if out != want {
		t.Fatalf("got:\n%q\nwant:\n%q", out, want)
	}
}

// The hot-path contract: counter increments and histogram observes must
// not allocate.
func TestUpdatesDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "T.", Label{Name: "k", Value: "v"})
	h := r.Histogram("test_seconds", "T.", DurationBuckets, Label{Name: "stage", Value: "x"})
	g := r.Gauge("test_depth", "T.")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(1.5e-4)
		h.ObserveSince(time.Now())
	}); n != 0 {
		t.Fatalf("metric updates allocate: %v allocs/op", n)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "T.", []float64{1, 2, 3})
	done := make(chan struct{})
	const per = 1000
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 5))
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if h.Count() != 4*per {
		t.Fatalf("Count = %d, want %d", h.Count(), 4*per)
	}
	wantSum := float64(4 * per / 5 * (0 + 1 + 2 + 3 + 4))
	if h.Sum() != wantSum {
		t.Fatalf("Sum = %g, want %g", h.Sum(), wantSum)
	}
}
