package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
)

func TestDeployPaperBuilding(t *testing.T) {
	b := PaperBuilding()
	d, err := Deploy(b, dsp.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.APs) != 40 {
		t.Fatalf("AP count = %d, want 40", len(d.APs))
	}
	// Same-floor pattern repeats across floors.
	for i := 0; i < b.APsPerFloor; i++ {
		a0 := d.APs[i]
		a1 := d.APs[b.APsPerFloor+i]
		if a0.X != a1.X || a0.Y != a1.Y {
			t.Fatal("AP placement should repeat per floor")
		}
		if a1.Z-a0.Z != b.FloorHeight {
			t.Fatal("floor height wrong")
		}
	}
	// Positions inside the building footprint.
	for _, ap := range d.APs {
		if ap.X < 0 || ap.X > b.Width || ap.Y < 0 || ap.Y > b.Depth {
			t.Fatalf("AP outside footprint: %+v", ap)
		}
	}
}

func TestDeployRejectsEmpty(t *testing.T) {
	if _, err := Deploy(Building{}, dsp.NewRand(1)); err == nil {
		t.Fatal("empty building should fail")
	}
}

func TestRSSISymmetryAndMonotonicity(t *testing.T) {
	b := PaperBuilding()
	b.ShadowSigmaDB = 0 // deterministic for this test
	d, err := Deploy(b, dsp.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	n := len(d.APs)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && d.RSSI[i][j] != d.RSSI[j][i] {
				t.Fatal("RSSI must be reciprocal")
			}
		}
	}
	// A same-floor nearby AP must be received more strongly than one four
	// floors away at the same (x, y).
	near := d.RSSI[0][1]
	far := d.RSSI[0][4*b.APsPerFloor]
	if near <= far {
		t.Fatalf("near %f dBm should exceed far %f dBm", near, far)
	}
}

func TestPathLossFloors(t *testing.T) {
	b := PaperBuilding()
	a := AP{X: 10, Y: 10, Z: 0, Floor: 0}
	c := AP{X: 10, Y: 10, Z: 2 * b.FloorHeight, Floor: 2}
	pl := pathLoss(b, a, c)
	noFloorPenalty := b.RefLossDB + 10*b.PathLossExp*math.Log10(2*b.FloorHeight)
	if math.Abs(pl-noFloorPenalty-2*b.FloorLossDB) > 1e-9 {
		t.Fatalf("floor penalty wrong: %v", pl)
	}
	// Sub-metre distances clamp to the reference distance.
	d := AP{X: 10.1, Y: 10, Z: 0, Floor: 0}
	if got := pathLoss(b, a, d); got != b.RefLossDB {
		t.Fatalf("short-range path loss = %v", got)
	}
}

func TestNeighborCountsThresholdMonotone(t *testing.T) {
	b := PaperBuilding()
	d, err := Deploy(b, dsp.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	lo := d.NeighborCounts(-90)
	hi := d.NeighborCounts(-60)
	for i := range lo {
		if hi[i] > lo[i] {
			t.Fatal("raising the threshold must not add neighbours")
		}
	}
}

func TestCDF(t *testing.T) {
	values, frac := CDF([]int{3, 1, 3, 2})
	wantV := []int{1, 2, 3}
	wantF := []float64{0.25, 0.5, 1.0}
	if len(values) != 3 {
		t.Fatalf("CDF values = %v", values)
	}
	for i := range wantV {
		if values[i] != wantV[i] || math.Abs(frac[i]-wantF[i]) > 1e-12 {
			t.Fatalf("CDF = %v %v", values, frac)
		}
	}
	if v, f := CDF(nil); v != nil || f != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := dsp.NewRand(seed)
		counts := make([]int, 5+r.Intn(50))
		for i := range counts {
			counts[i] = r.Intn(20)
		}
		vs, fs := CDF(counts)
		prevV, prevF := -1, 0.0
		for i := range vs {
			if vs[i] <= prevV || fs[i] < prevF || fs[i] > 1 {
				return false
			}
			prevV, prevF = vs[i], fs[i]
		}
		return len(fs) > 0 && math.Abs(fs[len(fs)-1]-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFig13ShiftsCDFLeft(t *testing.T) {
	// The paper's headline: with a standard receiver >80 % of APs have ≥12
	// interfering neighbours; with CPRecycle >80 % have ≤6. We check the
	// qualitative shift: the CPRecycle median is well below the standard
	// median, and no AP gains neighbours.
	res, err := Fig13(PaperBuilding(), 7, -82, 15)
	if err != nil {
		t.Fatal(err)
	}
	ms := MedianNeighbors(res.StandardCounts)
	mc := MedianNeighbors(res.CPRecycleCounts)
	t.Logf("median neighbours: standard %d, CPRecycle %d", ms, mc)
	if mc >= ms {
		t.Fatalf("CPRecycle median %d should be below standard %d", mc, ms)
	}
	if ms < 8 {
		t.Fatalf("standard deployment should be dense (median %d)", ms)
	}
	if mc > ms/2+1 {
		t.Fatalf("expected a strong reduction, got %d → %d", ms, mc)
	}
	for i := range res.StandardCounts {
		if res.CPRecycleCounts[i] > res.StandardCounts[i] {
			t.Fatal("no AP may gain neighbours from a higher threshold")
		}
	}
}

func TestMedianNeighbors(t *testing.T) {
	if MedianNeighbors([]int{5, 1, 9}) != 5 {
		t.Fatal("median wrong")
	}
	if MedianNeighbors(nil) != 0 {
		t.Fatal("empty median should be 0")
	}
}
