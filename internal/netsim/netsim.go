// Package netsim reproduces the network-level analysis of the paper's
// Fig. 13: the CDF of the number of interfering neighbours seen by access
// points in a five-floor office building, with a standard receiver versus a
// CPRecycle receiver whose tolerable interference threshold is 15 dB higher
// (the co-channel margin measured in Fig. 11).
//
// The paper measured RSSI between 40 APs in the Informatics Forum [32];
// that trace is not public, so per the substitution rule we synthesise the
// deployment: a glass-and-atrium five-floor building modelled with a
// log-distance path loss plus per-floor attenuation, 8 APs per floor placed
// on a jittered grid at fixed per-floor positions ("mostly the same place
// for access points in each floor").
package netsim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dsp"
)

// Building describes the synthetic office deployment.
type Building struct {
	// Floors is the number of floors.
	Floors int
	// APsPerFloor is the number of access points per floor.
	APsPerFloor int
	// Width and Depth are the floor dimensions in metres.
	Width, Depth float64
	// FloorHeight is the inter-floor spacing in metres.
	FloorHeight float64
	// PathLossExp is the log-distance path loss exponent (glass-heavy
	// open-plan offices are typically 2.5-3.5).
	PathLossExp float64
	// FloorLossDB is the attenuation per floor crossed. The paper's
	// building has "a large atrium and most of the walls are made of
	// glass", so inter-floor isolation is weak.
	FloorLossDB float64
	// TxPowerDBm is each AP's transmit power.
	TxPowerDBm float64
	// RefLossDB is the path loss at the 1 m reference distance.
	RefLossDB float64
	// ShadowSigmaDB is the log-normal shadowing standard deviation.
	ShadowSigmaDB float64
	// PlacementJitterM jitters the grid placement of each AP.
	PlacementJitterM float64
}

// PaperBuilding returns parameters matching the paper's description of the
// Informatics Forum: five floors, 40 APs, glass walls (low in-floor loss),
// a large atrium (reduced floor isolation).
func PaperBuilding() Building {
	return Building{
		Floors:           5,
		APsPerFloor:      8,
		Width:            80,
		Depth:            60,
		FloorHeight:      4,
		PathLossExp:      2.8,
		FloorLossDB:      7,
		TxPowerDBm:       20,
		RefLossDB:        40,
		ShadowSigmaDB:    4,
		PlacementJitterM: 5,
	}
}

// AP is one deployed access point.
type AP struct {
	X, Y, Z float64
	Floor   int
}

// Deployment is a realised AP placement with pairwise RSSI.
type Deployment struct {
	APs []AP
	// RSSI[i][j] is the received power at AP i from AP j in dBm
	// (RSSI[i][i] is +Inf and never used).
	RSSI [][]float64
}

// Deploy places the building's APs (jittered grid per floor, repeated
// across floors) and computes the pairwise RSSI matrix.
func Deploy(b Building, r *dsp.Rand) (*Deployment, error) {
	if b.Floors < 1 || b.APsPerFloor < 1 {
		return nil, fmt.Errorf("netsim: need at least one floor and one AP per floor")
	}
	cols := int(math.Ceil(math.Sqrt(float64(b.APsPerFloor))))
	rows := (b.APsPerFloor + cols - 1) / cols

	// Per-floor grid positions are drawn once and reused on every floor
	// ("mostly the same place for access points in each floor").
	type pos struct{ x, y float64 }
	base := make([]pos, 0, b.APsPerFloor)
	for i := 0; i < b.APsPerFloor; i++ {
		cx := (float64(i%cols) + 0.5) * b.Width / float64(cols)
		cy := (float64(i/cols) + 0.5) * b.Depth / float64(rows)
		base = append(base, pos{
			x: clamp(cx+(r.Float64()*2-1)*b.PlacementJitterM, 0, b.Width),
			y: clamp(cy+(r.Float64()*2-1)*b.PlacementJitterM, 0, b.Depth),
		})
	}

	d := &Deployment{}
	for f := 0; f < b.Floors; f++ {
		for i := 0; i < b.APsPerFloor; i++ {
			d.APs = append(d.APs, AP{X: base[i].x, Y: base[i].y, Z: float64(f) * b.FloorHeight, Floor: f})
		}
	}
	n := len(d.APs)
	d.RSSI = make([][]float64, n)
	for i := 0; i < n; i++ {
		d.RSSI[i] = make([]float64, n)
		d.RSSI[i][i] = math.Inf(1)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pl := pathLoss(b, d.APs[i], d.APs[j]) + r.NormFloat64()*b.ShadowSigmaDB
			rssi := b.TxPowerDBm - pl
			d.RSSI[i][j] = rssi
			d.RSSI[j][i] = rssi // reciprocal channel (shadowing shared)
		}
	}
	return d, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// pathLoss is log-distance path loss plus per-floor attenuation.
func pathLoss(b Building, a1, a2 AP) float64 {
	dx, dy, dz := a1.X-a2.X, a1.Y-a2.Y, a1.Z-a2.Z
	dist := math.Sqrt(dx*dx + dy*dy + dz*dz)
	if dist < 1 {
		dist = 1
	}
	floors := a1.Floor - a2.Floor
	if floors < 0 {
		floors = -floors
	}
	return b.RefLossDB + 10*b.PathLossExp*math.Log10(dist) + float64(floors)*b.FloorLossDB
}

// NeighborCounts returns, for every AP, how many other APs are received
// above thresholdDBm — the paper's "interfering neighbours".
func (d *Deployment) NeighborCounts(thresholdDBm float64) []int {
	out := make([]int, len(d.APs))
	for i := range d.APs {
		n := 0
		for j := range d.APs {
			if i != j && d.RSSI[i][j] >= thresholdDBm {
				n++
			}
		}
		out[i] = n
	}
	return out
}

// CDF returns the empirical CDF of integer counts as sorted (value,
// cumulative fraction) pairs.
func CDF(counts []int) (values []int, fraction []float64) {
	if len(counts) == 0 {
		return nil, nil
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if len(values) > 0 && values[len(values)-1] == v {
			fraction[len(fraction)-1] = float64(i+1) / float64(len(sorted))
			continue
		}
		values = append(values, v)
		fraction = append(fraction, float64(i+1)/float64(len(sorted)))
	}
	return values, fraction
}

// Fig13Result compares neighbour counts for the standard receiver and a
// CPRecycle receiver tolerating gainDB more interference.
type Fig13Result struct {
	StandardCounts  []int
	CPRecycleCounts []int
}

// Fig13 runs the paper's Fig. 13 analysis. A CPRecycle receiver tolerates
// gainDB more co-channel interference (Fig. 11), so only neighbours gainDB
// stronger than the standard threshold still count as interferers: its
// effective detection threshold moves up by gainDB.
func Fig13(b Building, seed int64, thresholdDBm, gainDB float64) (*Fig13Result, error) {
	r := dsp.NewRand(seed)
	d, err := Deploy(b, r)
	if err != nil {
		return nil, err
	}
	return &Fig13Result{
		StandardCounts:  d.NeighborCounts(thresholdDBm),
		CPRecycleCounts: d.NeighborCounts(thresholdDBm + gainDB),
	}, nil
}

// MedianNeighbors returns the median of a count slice.
func MedianNeighbors(counts []int) int {
	if len(counts) == 0 {
		return 0
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	return sorted[len(sorted)/2]
}
